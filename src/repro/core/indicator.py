"""Indicator-matrix sources: how batches of ``A`` enter the pipeline.

An :class:`IndicatorSource` abstracts "``n`` data samples over attribute
values ``0..m-1``" and supports *batched, per-rank* reads: reader rank
``r`` of ``n_readers`` is responsible for the samples ``j`` with
``j % n_readers == r`` (the file-cyclic assignment of the paper's
``readFiles``), and a read returns only the attribute values falling in
the current batch's row window ``[lo, hi)`` as batch-local coordinates.

Concrete sources:

* :class:`SetSource` — in-memory collections of attribute values;
* :class:`CooSource` — an existing :class:`~repro.sparse.coo.CooMatrix`;
* :class:`FileSource` — one sorted ``.npy``/text file per sample, the
  on-disk format GenomeAtScale produces;
* :class:`SyntheticSource` — Bernoulli(``density``) indicator entries
  generated deterministically per (batch, sample), with optional
  heavy-tailed per-sample density skew; batches never materialize the
  whole matrix, so ``m`` can be very large (the paper's synthetic runs
  use m = 32M).
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.util.prng import rng_for


@runtime_checkable
class IndicatorSource(Protocol):
    """Batched, rank-partitioned access to an indicator matrix."""

    @property
    def n(self) -> int:
        """Number of data samples (columns of ``A``)."""
        ...

    @property
    def m(self) -> int:
        """Number of possible attribute values (rows of ``A``)."""
        ...

    def read_batch(self, lo: int, hi: int, rank: int, n_readers: int) -> CooMatrix:
        """Coordinates of batch rows ``[lo, hi)`` for reader ``rank``.

        Returns a :class:`CooMatrix` of shape ``(hi - lo, n)`` whose rows
        are batch-local (``global_row - lo``) and whose columns are the
        global sample indices assigned to this reader.
        """
        ...

    def read_bytes(self, lo: int, hi: int, rank: int, n_readers: int) -> int:
        """Bytes this reader pulls from storage for the batch (I/O model)."""
        ...

    def nnz_estimate(self) -> int:
        """Approximate total nonzeros of ``A`` (drives the batch planner)."""
        ...


def _reader_samples(n: int, rank: int, n_readers: int) -> np.ndarray:
    if not 0 <= rank < n_readers:
        raise IndexError(f"reader rank {rank} out of range for {n_readers}")
    return np.arange(rank, n, n_readers, dtype=np.int64)


class SetSource:
    """Samples given as in-memory collections of integer attribute values."""

    def __init__(self, sets: Sequence, m: int | None = None):
        self._arrays = [
            np.unique(np.asarray(sorted(s), dtype=np.int64)) for s in sets
        ]
        max_val = max((int(a[-1]) for a in self._arrays if a.size), default=-1)
        # At least one row so that an all-empty family still yields a
        # well-formed (1 x n) indicator matrix of zeros.
        self._m = int(m) if m is not None else max(max_val + 1, 1)
        if self._m <= max_val:
            raise ValueError(
                f"m={self._m} too small for max attribute value {max_val}"
            )
        self._nnz = sum(a.size for a in self._arrays)

    @property
    def n(self) -> int:
        return len(self._arrays)

    @property
    def m(self) -> int:
        return self._m

    def read_batch(self, lo: int, hi: int, rank: int, n_readers: int) -> CooMatrix:
        rows_parts, cols_parts = [], []
        for j in _reader_samples(self.n, rank, n_readers):
            vals = self._arrays[j]
            a, b = np.searchsorted(vals, [lo, hi])
            window = vals[a:b]
            rows_parts.append(window - lo)
            cols_parts.append(np.full(window.size, j, dtype=np.int64))
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
        return CooMatrix(rows, cols, (hi - lo, self.n))

    def read_bytes(self, lo: int, hi: int, rank: int, n_readers: int) -> int:
        coo = self.read_batch(lo, hi, rank, n_readers)
        return coo.nnz * 8

    def nnz_estimate(self) -> int:
        return self._nnz


class CooSource:
    """Wraps a fully materialized :class:`CooMatrix` (tests, small data)."""

    def __init__(self, coo: CooMatrix):
        self._coo = coo.deduplicate()
        order = np.lexsort((self._coo.cols, self._coo.rows))
        self._rows = self._coo.rows[order]
        self._cols = self._coo.cols[order]

    @property
    def n(self) -> int:
        return self._coo.shape[1]

    @property
    def m(self) -> int:
        return self._coo.shape[0]

    def read_batch(self, lo: int, hi: int, rank: int, n_readers: int) -> CooMatrix:
        a, b = np.searchsorted(self._rows, [lo, hi])
        rows = self._rows[a:b]
        cols = self._cols[a:b]
        mine = cols % n_readers == rank
        return CooMatrix(rows[mine] - lo, cols[mine], (hi - lo, self.n))

    def read_bytes(self, lo: int, hi: int, rank: int, n_readers: int) -> int:
        return self.read_batch(lo, hi, rank, n_readers).nnz * 8

    def nnz_estimate(self) -> int:
        return self._coo.nnz


class FileSource:
    """One sorted attribute-value file per sample.

    Supports ``.npy`` arrays (preferred: loaded once, windowed with
    ``searchsorted``) and plain text files with one integer per line —
    the "sorted numerical representation" GenomeAtScale materializes for
    each sequencing sample (§IV).
    """

    def __init__(self, paths: Sequence[str | Path], m: int):
        self.paths = [Path(p) for p in paths]
        if not self.paths:
            raise ValueError("FileSource requires at least one sample file")
        self._m = int(m)
        self._cache: dict[int, np.ndarray] = {}
        self._nnz: int | None = None

    @property
    def n(self) -> int:
        return len(self.paths)

    @property
    def m(self) -> int:
        return self._m

    def _load(self, j: int) -> np.ndarray:
        if j not in self._cache:
            path = self.paths[j]
            if path.suffix == ".npy":
                vals = np.load(path)
            else:
                vals = np.loadtxt(path, dtype=np.int64, ndmin=1)
            vals = np.unique(np.asarray(vals, dtype=np.int64))
            if vals.size and (vals[0] < 0 or vals[-1] >= self._m):
                raise ValueError(
                    f"{path}: values outside [0, {self._m}): "
                    f"[{vals[0]}, {vals[-1]}]"
                )
            self._cache[j] = vals
        return self._cache[j]

    def read_batch(self, lo: int, hi: int, rank: int, n_readers: int) -> CooMatrix:
        rows_parts, cols_parts = [], []
        for j in _reader_samples(self.n, rank, n_readers):
            vals = self._load(j)
            a, b = np.searchsorted(vals, [lo, hi])
            window = vals[a:b]
            rows_parts.append(window - lo)
            cols_parts.append(np.full(window.size, j, dtype=np.int64))
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
        return CooMatrix(rows, cols, (hi - lo, self.n))

    def read_bytes(self, lo: int, hi: int, rank: int, n_readers: int) -> int:
        return self.read_batch(lo, hi, rank, n_readers).nnz * 8

    def nnz_estimate(self) -> int:
        if self._nnz is None:
            self._nnz = sum(self._load(j).size for j in range(self.n))
        return self._nnz


class SyntheticSource:
    """Random Bernoulli indicator entries, generated per (batch, sample).

    Each sample ``j`` has density ``density * skew_j`` where ``skew_j``
    is a deterministic lognormal multiplier controlled by
    ``density_skew`` (0 = uniform columns; larger values model the
    high-variability BIGSI-like regime, §V-B).  Reads are reproducible
    for any batching: the draw for sample ``j`` over rows ``[lo, hi)``
    depends only on ``(seed, j, lo, hi)``; using the same batch
    boundaries always reproduces the same matrix.
    """

    def __init__(
        self,
        m: int,
        n: int,
        density: float,
        seed: int = 0,
        density_skew: float = 0.0,
    ):
        if m <= 0 or n <= 0:
            raise ValueError(f"m and n must be positive, got m={m}, n={n}")
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        self._m = int(m)
        self._n = int(n)
        self.density = float(density)
        self.seed = int(seed)
        self.density_skew = float(density_skew)
        if density_skew > 0:
            skew_rng = rng_for(seed, "skew")
            raw = skew_rng.lognormal(mean=0.0, sigma=density_skew, size=n)
            self._col_density = np.minimum(1.0, density * raw / raw.mean())
        else:
            self._col_density = np.full(n, density)

    @property
    def n(self) -> int:
        return self._n

    @property
    def m(self) -> int:
        return self._m

    def read_batch(self, lo: int, hi: int, rank: int, n_readers: int) -> CooMatrix:
        span = hi - lo
        rows_parts, cols_parts = [], []
        for j in _reader_samples(self.n, rank, n_readers):
            rng = rng_for(self.seed, "cell", j, lo, hi)
            count = rng.binomial(span, self._col_density[j])
            if count:
                rows = np.unique(rng.integers(0, span, size=count))
                rows_parts.append(rows.astype(np.int64))
                cols_parts.append(np.full(rows.size, j, dtype=np.int64))
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
        return CooMatrix(rows, cols, (span, self.n))

    def read_bytes(self, lo: int, hi: int, rank: int, n_readers: int) -> int:
        samples = _reader_samples(self.n, rank, n_readers)
        expected = float((hi - lo) * self._col_density[samples].sum())
        return int(expected * 8)

    def nnz_estimate(self) -> int:
        return int(self._m * self._col_density.sum())
