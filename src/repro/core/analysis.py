"""The paper's §III-C analytic BSP cost model.

These closed forms mirror the paper's batch cost

    T(z, n, M, c, p) = O( (1 + z / (M sqrt(cp))) * alpha
                        + (z / sqrt(cp) + c n^2 / p + p) * beta
                        + (F / p) * gamma )

the memory-bound simplification ``T~(n, M, p)``, the total cost over all
batches, and the strong-scaling efficiency ``E_p`` (shown to be O(1)).

They serve two purposes: (1) cross-validation — tests check that the
*measured* ledger of the simulator scales the way the model predicts
(same slopes in p, z, c); (2) planning — the grid planner uses the beta
terms to choose the replication factor, and
:func:`predicted_gram_kernel` predicts the density-adaptive kernel
dispatch from ``nnz_estimate`` before any data is read.

Units: ``z``/``Z`` count nonzero *words* of the compressed batch /
problem, ``M`` is per-rank memory in words, ``F``/``G`` are arithmetic
operation counts, and all outputs are seconds under a
:class:`~repro.runtime.machine.MachineSpec` (word size 8 bytes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.runtime.machine import MachineSpec

WORD_BYTES = 8


@dataclass(frozen=True)
class CostBreakdown:
    """An analytic cost split into its alpha / beta / gamma components."""

    supersteps: float
    words_communicated: float
    operations: float
    spec: MachineSpec

    @property
    def alpha_seconds(self) -> float:
        return self.supersteps * self.spec.alpha

    @property
    def beta_seconds(self) -> float:
        return self.words_communicated * WORD_BYTES * self.spec.beta_inter

    @property
    def gamma_seconds(self) -> float:
        return self.operations * self.spec.gamma

    @property
    def seconds(self) -> float:
        return self.alpha_seconds + self.beta_seconds + self.gamma_seconds


def batch_cost(
    z: float, n: int, M: float, c: int, p: int, F: float, spec: MachineSpec
) -> CostBreakdown:
    """Per-batch BSP cost ``T(z, n, M, c, p)`` of §III-C.

    ``z`` nonzeros in the compressed batch, ``M`` words of memory per
    rank, ``c`` output replicas, ``p`` ranks, ``F`` arithmetic ops.
    Includes the ``p * beta`` filter prefix-sum term.
    """
    if p <= 0 or c <= 0:
        raise ValueError(f"p and c must be positive, got p={p}, c={c}")
    if c > p:
        raise ValueError(f"replication c={c} cannot exceed p={p}")
    root = math.sqrt(c * p)
    supersteps = 1.0 + z / (M * root)
    words = z / root + c * float(n) ** 2 / p + p
    return CostBreakdown(supersteps, words, F / p, spec)


def memory_bound_batch_cost(
    n: int, M: float, p: int, F: float, spec: MachineSpec
) -> CostBreakdown:
    """The simplified ``T~(n, M, p)`` for ``z = Theta(Mp)``,
    ``c = Theta(min(p, Mp / n^2))``, ``p = O(M)``, ``M <= n^2``."""
    sqrt_m = math.sqrt(M)
    supersteps = float(n) / sqrt_m
    words = float(n) * sqrt_m
    return CostBreakdown(supersteps, words, F / p, spec)


def total_cost(
    Z: float, n: int, M: float, p: int, G: float, spec: MachineSpec
) -> CostBreakdown:
    """Whole-problem cost with memory-maximal batches (§III-C):

        (Z / Mp) * T~(n, M, p)
        = (n Z / (p M^{3/2})) alpha + (n Z / (sqrt(M) p)) beta + (G/p) gamma
    """
    if M <= 0 or p <= 0:
        raise ValueError(f"M and p must be positive, got M={M}, p={p}")
    supersteps = n * Z / (p * M ** 1.5)
    words = n * Z / (math.sqrt(M) * p)
    return CostBreakdown(supersteps, words, G / p, spec)


def strong_scaling_efficiency(
    n: int, p0: int, p: int, spec: MachineSpec, flops_per_word: float = 2.0
) -> float:
    """The §III-C efficiency ratio ``E_p`` (shown to be Theta(1)).

    Baseline: ``p0`` ranks hold the problem with ``M = n^2 / p0`` and one
    batch of ``z0 = n^2`` nonzeros; scaled run: ``p`` ranks process a
    ``p/p0``-times larger batch with replication ``c = p/p0``.
    Returns ``T(z0, n, M, 1, p0) / T(p z0/p0, n, M, c, p)`` — values
    near 1 mean perfect strong scaling.
    """
    if p % p0 != 0:
        raise ValueError(f"p={p} must be a multiple of p0={p0}")
    M = float(n) ** 2 / p0
    z0 = float(n) ** 2
    scale = p // p0
    base = batch_cost(z0, n, M, 1, p0, flops_per_word * z0, spec)
    big = batch_cost(
        z0 * scale, n, M, scale, p, flops_per_word * z0 * scale, spec
    )
    return base.seconds / big.seconds


def expected_nonzero_rows(m_rows: float, n_cols: int, nnz: float) -> float:
    """Expected surviving rows after zero-row filtering (uniform model).

    Under a uniform Bernoulli indicator with per-cell density ``delta =
    nnz / (m n)``, a row survives the filter with probability ``1 - (1 -
    delta)^n``; computed via ``expm1``/``log1p`` so the hypersparse limit
    (``delta`` near ``1e-12``, as in BIGSI) stays accurate.
    """
    if m_rows <= 0 or n_cols <= 0 or nnz <= 0:
        return 0.0
    delta = min(nnz / (float(m_rows) * n_cols), 1.0)
    if delta >= 1.0:
        return float(m_rows)
    survive = -math.expm1(n_cols * math.log1p(-delta))
    return float(m_rows) * survive


def predicted_gram_kernel(
    m_rows: float,
    n_cols: int,
    nnz: float,
    bit_width: int,
    policy: str = "adaptive",
):
    """The planner's kernel prediction from ``nnz_estimate`` alone.

    Mirrors the per-batch runtime dispatch, but runs before any data is
    read: survivors are *estimated* with :func:`expected_nonzero_rows`
    rather than measured.  On uniform synthetic inputs the prediction
    matches the runtime decision batch for batch (tests pin this); on
    skewed inputs it is the a-priori guess the driver reports as
    ``SimilarityResult.planned_kernel``.

    Returns the same :class:`~repro.sparse.dispatch.DispatchDecision`
    the runtime dispatcher produces.
    """
    from repro.sparse.dispatch import choose_kernel

    survivors = int(round(expected_nonzero_rows(m_rows, n_cols, nnz)))
    return choose_kernel(survivors, n_cols, nnz, bit_width, policy=policy)


def gram_operations(z: float, n: int, n_word_rows: float) -> float:
    """Modelled popcount-Gram op count for one batch.

    With dense packed word blocks the sweep costs ``2 * h * n^2 / 2``
    word ops (symmetric); ``z`` only matters through the surviving word
    rows ``h``, so the caller passes both.
    """
    del z  # retained for signature symmetry with the paper's F(z, ...)
    return float(n_word_rows) * float(n) * (float(n) + 1.0)
