"""Sketch data structures for error-bounded approximate Jaccard.

The paper's exact bit-matrix pipeline is communication-optimal for
*exact* Jaccard; its own Table II comparison point — MinHash tools like
Mash and BinDash — marks the other end of the accuracy/traffic
trade-off.  This module provides that end as a first-class subsystem:
three sketch types with a common protocol, each carrying an analytic
error bound, each streamable (batched updates commute with one-shot
construction) and mergeable (sketch of a union from sketches of the
parts).

``minhash`` — :class:`KMinValuesSketch`
    Bottom-``s`` (k-min-values) MinHash: the ``s`` smallest 64-bit
    hashes of the set.  The Mash estimator reads J off the shared
    fraction of the union's bottom-``s``; standard error is
    ``sqrt(J(1-J)/s)``.

``bbit_minhash`` — :class:`BBitMinHashSketch`
    ``k`` independent one-permutation lanes, each keeping only the low
    ``b`` bits of a fingerprint of its minimum hash (Li & König).  Wire
    size is ``k*b`` bits per sample — 8x smaller than bottom-k at
    ``b=8`` — at the price of a known collision floor ``C = 2^-b``
    corrected out by the unbiased estimator ``(m - C) / (1 - C)``.

``hll`` — :class:`HyperLogLogSketch`
    HyperLogLog union-cardinality registers.  Merge is an elementwise
    register ``max`` (associative, commutative, idempotent), so the
    union cardinality of any pair is sketchable from per-sample
    sketches; J follows by inclusion–exclusion against the exact
    per-sample sizes.  Relative cardinality error is ``1.04/sqrt(r)``
    for ``r`` registers.

The serial baseline in :mod:`repro.baselines.minhash` re-exports the
hash primitives defined here, so both layers agree bit-for-bit on what
a hash is.  The distributed exchange lives in
:mod:`repro.sparse.sketch_exchange`; estimator semantics and the wire
layout of packed sketches are documented in ``docs/sketches.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.prng import derive_seed

#: Sketch-based estimator names (the lossy family).
SKETCH_ESTIMATORS = ("minhash", "bbit_minhash", "hll")

#: Every estimator accepted by ``SimilarityConfig.estimator``.
ESTIMATORS = ("exact",) + SKETCH_ESTIMATORS

#: Two-sided 95% normal quantile used by every analytic bound.
Z_95 = 1.959963984540054

#: Supported ``b`` range for b-bit packed MinHash lanes.
MIN_SKETCH_BITS, MAX_SKETCH_BITS = 1, 16

_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)

_U64_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)
_TWO_64 = 2.0**64


def _clamp_union_count(estimate: float, a: int, b: int) -> int:
    """Clamp a union-cardinality estimate to its exact bounds.

    ``|A ∪ B|`` always lies in ``[max(|A|, |B|), |A| + |B|]``; merged
    sketches track their cardinality as an estimate clamped to that
    window (exact inputs make the window tight for disjoint or nested
    parts).
    """
    return int(min(a + b, max(a, b, round(estimate))))


def splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a cheap, well-mixed 64-bit hash."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += _GOLDEN
        x ^= x >> np.uint64(30)
        x *= _MIX_1
        x ^= x >> np.uint64(27)
        x *= _MIX_2
        x ^= x >> np.uint64(31)
    return x


def hash_values(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Hash integer attribute values to uniform 64-bit keys."""
    vals = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        salted = vals + np.uint64(seed) * _GOLDEN
    return splitmix64(salted)


def _as_value_array(values) -> np.ndarray:
    """Coerce any iterable of non-negative ints to a unique int64 array."""
    if isinstance(values, np.ndarray):
        arr = values.astype(np.int64, copy=False)
    else:
        arr = np.asarray(sorted(values), dtype=np.int64)
    return np.unique(arr)


# ---- b-bit lane packing ---------------------------------------------------


def pack_lanes(lanes: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``k`` ``bits``-wide lane values into a dense uint64 word array.

    Lane ``l`` occupies bit positions ``[l*bits, (l+1)*bits)`` of the
    word stream, LSB-first — the layout ``docs/sketches.md`` documents
    for the wire.  Values may straddle a word boundary when ``bits``
    does not divide 64.
    """
    if not MIN_SKETCH_BITS <= bits <= MAX_SKETCH_BITS:
        raise ValueError(
            f"bits must be in [{MIN_SKETCH_BITS}, {MAX_SKETCH_BITS}], "
            f"got {bits}"
        )
    lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
    if np.any(lanes >> np.uint64(bits)):
        raise ValueError(f"lane values exceed {bits} bits")
    k = lanes.size
    n_words = -(-(k * bits) // 64)
    words = np.zeros(n_words, dtype=np.uint64)
    pos = np.arange(k, dtype=np.int64) * bits
    word_idx = pos // 64
    offset = (pos % 64).astype(np.uint64)
    np.bitwise_or.at(words, word_idx, lanes << offset)
    straddle = (pos % 64) + bits > 64
    if np.any(straddle):
        hi = lanes[straddle] >> (np.uint64(64) - offset[straddle])
        np.bitwise_or.at(words, word_idx[straddle] + 1, hi)
    return words


def unpack_lanes(words: np.ndarray, bits: int, k: int) -> np.ndarray:
    """Invert :func:`pack_lanes` into ``k`` lane values."""
    if not MIN_SKETCH_BITS <= bits <= MAX_SKETCH_BITS:
        raise ValueError(
            f"bits must be in [{MIN_SKETCH_BITS}, {MAX_SKETCH_BITS}], "
            f"got {bits}"
        )
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.size < -(-(k * bits) // 64):
        raise ValueError(
            f"{words.size} word(s) cannot hold {k} lanes of {bits} bits"
        )
    mask = (np.uint64(1) << np.uint64(bits)) - np.uint64(1)
    pos = np.arange(k, dtype=np.int64) * bits
    word_idx = pos // 64
    offset = (pos % 64).astype(np.uint64)
    lanes = (words[word_idx] >> offset) & mask
    straddle = (pos % 64) + bits > 64
    if np.any(straddle):
        hi = words[word_idx[straddle] + 1] << (
            np.uint64(64) - offset[straddle]
        )
        lanes[straddle] = (lanes[straddle] | hi) & mask
    return lanes


# ---- uint64 bit lengths (exact, vectorized) -------------------------------


def _bit_length_u64(x: np.ndarray) -> np.ndarray:
    """Exact ``int.bit_length`` of each uint64 (0 for 0), vectorized."""
    x = np.ascontiguousarray(x, dtype=np.uint64)
    out = np.zeros(x.shape, dtype=np.int64)
    work = x.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = work >= (np.uint64(1) << np.uint64(shift))
        out[big] += shift
        work[big] >>= np.uint64(shift)
    out[x != 0] += 1
    return out


# ---- k-min-values MinHash -------------------------------------------------


@dataclass
class KMinValuesSketch:
    """Bottom-``size`` MinHash sketch: the smallest hashes, sorted.

    ``hashes`` always holds at most ``size`` sorted unique values; sets
    with fewer than ``size`` distinct elements keep everything (the
    estimate then degenerates to exact Jaccard, as in Mash).
    """

    size: int
    seed: int = 0
    hashes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint64)
    )
    #: Distinct values inserted via ``update`` (exact when batched
    #: inserts are disjoint); after ``merge``, the clamped
    #: union-cardinality estimate (see :func:`_clamp_union_count`).
    n_values: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"sketch size must be positive, got {self.size}")

    @classmethod
    def from_values(
        cls, values, size: int, seed: int = 0
    ) -> "KMinValuesSketch":
        sk = cls(size=size, seed=seed)
        sk.update(values)
        return sk

    def update(self, values) -> "KMinValuesSketch":
        """Fold more attribute values in (streaming insertion)."""
        vals = _as_value_array(values)
        if vals.size == 0:
            return self
        fresh = np.unique(hash_values(vals, self.seed))
        merged = np.union1d(self.hashes, fresh)
        # n_values tracks distinct *hashes* seen, which equals distinct
        # values up to 64-bit hash collisions — the same approximation
        # every MinHash tool makes.
        self.n_values += merged.size - self.hashes.size
        self.hashes = merged[: self.size]
        return self

    def merge(self, other: "KMinValuesSketch") -> "KMinValuesSketch":
        """Sketch of the union of the two underlying sets.

        The merged ``n_values`` is the union cardinality — exact while
        the merged sketch is unsaturated (it then holds every hash of
        the union), the standard k-min-values estimate
        ``(s - 1) / U_(s)`` once saturated — clamped to the exact
        ``[max, sum]`` window the part counts imply.
        """
        self._check_compatible(other)
        merged = np.union1d(self.hashes, other.hashes)
        out = KMinValuesSketch(size=self.size, seed=self.seed)
        out.hashes = merged[: self.size]
        if merged.size < self.size:
            estimate = float(merged.size)
        else:
            kth = float(out.hashes[-1]) / _TWO_64
            estimate = (self.size - 1) / kth if kth > 0 else merged.size
        out.n_values = _clamp_union_count(
            estimate, self.n_values, other.n_values
        )
        return out

    def _check_compatible(self, other: "KMinValuesSketch") -> None:
        if self.size != other.size or self.seed != other.seed:
            raise ValueError(
                f"incompatible sketches: size/seed "
                f"({self.size}, {self.seed}) vs ({other.size}, {other.seed})"
            )

    def jaccard(self, other: "KMinValuesSketch") -> float:
        """Mash estimator: shared fraction of the union's bottom-``s``."""
        self._check_compatible(other)
        if self.hashes.size == 0 and other.hashes.size == 0:
            return 1.0
        union = np.union1d(self.hashes, other.hashes)[: self.size]
        if union.size == 0:
            return 1.0
        in_a = np.isin(union, self.hashes, assume_unique=True)
        in_b = np.isin(union, other.hashes, assume_unique=True)
        return float((in_a & in_b).sum() / union.size)

    def error_bound(self, z: float = Z_95) -> float:
        """Worst-case (J = 1/2) additive bound on the estimate."""
        return min(1.0, z * 0.5 / math.sqrt(self.size))

    @property
    def nbytes(self) -> int:
        """Wire bytes of the hash payload."""
        return int(self.hashes.nbytes)


# ---- b-bit packed MinHash -------------------------------------------------


@dataclass
class BBitMinHashSketch:
    """``k`` one-value-per-lane MinHash lanes, truncated to ``b`` bits.

    During accumulation every lane keeps its full 64-bit minimum
    (streaming updates stay exact); :meth:`fingerprints` rehashes the
    minima and keeps the low ``b`` bits — the only part that ever
    crosses the wire, packed by :func:`pack_lanes`.
    """

    size: int
    bits: int = 8
    seed: int = 0
    mins: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Distinct values inserted via ``update`` (exact when batched
    #: inserts are disjoint); after ``merge``, the clamped
    #: union-cardinality estimate (see :func:`_clamp_union_count`).
    n_values: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"sketch size must be positive, got {self.size}")
        if not MIN_SKETCH_BITS <= self.bits <= MAX_SKETCH_BITS:
            raise ValueError(
                f"bits must be in [{MIN_SKETCH_BITS}, {MAX_SKETCH_BITS}], "
                f"got {self.bits}"
            )
        if self.mins is None:
            self.mins = np.full(self.size, _U64_MAX, dtype=np.uint64)

    @classmethod
    def from_values(
        cls, values, size: int, bits: int = 8, seed: int = 0
    ) -> "BBitMinHashSketch":
        sk = cls(size=size, bits=bits, seed=seed)
        sk.update(values)
        return sk

    def _lane_salts(self) -> np.ndarray:
        rng_seed = derive_seed(self.seed, "bbit", "lanes")
        with np.errstate(over="ignore"):
            return splitmix64(
                np.arange(self.size, dtype=np.uint64)
                + np.uint64(rng_seed)
            )

    def update(self, values) -> "BBitMinHashSketch":
        """Fold more attribute values in (streaming insertion)."""
        vals = _as_value_array(values)
        if vals.size == 0:
            return self
        self.n_values += vals.size
        base = hash_values(vals, self.seed)
        salts = self._lane_salts()
        # One well-mixed hash per value, re-keyed per lane by xor-salt +
        # multiply: h_l(v) = splitmix-style mix of (h(v) xor salt_l).
        # Chunk lanes so the (values x lanes) table stays cache-sized.
        step = max(1, 1 << 22 >> max(1, vals.size).bit_length())
        for lo in range(0, self.size, step):
            sl = salts[lo : lo + step]
            with np.errstate(over="ignore"):
                table = (base[:, None] ^ sl[None, :]) * _MIX_1
                table ^= table >> np.uint64(29)
                table *= _MIX_2
            np.minimum(
                self.mins[lo : lo + sl.size],
                table.min(axis=0),
                out=self.mins[lo : lo + sl.size],
            )
        return self

    def merge(self, other: "BBitMinHashSketch") -> "BBitMinHashSketch":
        """Sketch of the union: elementwise lane minima.

        The merged ``n_values`` is estimated from the lane minima (the
        minimum of ``n`` uniform draws averages ``1/(n+1)``, so
        ``n ≈ k / sum(min_i) - 1``), clamped to the exact
        ``[max, sum]`` window the part counts imply.
        """
        self._check_compatible(other)
        out = BBitMinHashSketch(size=self.size, bits=self.bits, seed=self.seed)
        out.mins = np.minimum(self.mins, other.mins)
        normalized = float((out.mins / _TWO_64).sum())
        estimate = self.size / normalized - 1 if normalized > 0 else 0.0
        out.n_values = _clamp_union_count(
            estimate, self.n_values, other.n_values
        )
        return out

    def _check_compatible(self, other: "BBitMinHashSketch") -> None:
        if (
            self.size != other.size
            or self.bits != other.bits
            or self.seed != other.seed
        ):
            raise ValueError(
                f"incompatible sketches: (size, bits, seed) "
                f"({self.size}, {self.bits}, {self.seed}) vs "
                f"({other.size}, {other.bits}, {other.seed})"
            )

    def fingerprints(self) -> np.ndarray:
        """Low-``b``-bit lane fingerprints (what travels on the wire).

        The minima are rehashed before truncation so two *different*
        lane minima collide with probability ``2^-b`` regardless of the
        structure of the raw hash values.
        """
        mask = (np.uint64(1) << np.uint64(self.bits)) - np.uint64(1)
        return splitmix64(self.mins) & mask

    def packed(self) -> np.ndarray:
        """The b-bit-packed wire payload (see :func:`pack_lanes`)."""
        return pack_lanes(self.fingerprints(), self.bits)

    @property
    def collision_floor(self) -> float:
        """``C = 2^-b``: the match probability of unrelated lanes."""
        return 2.0 ** -self.bits

    def jaccard(self, other: "BBitMinHashSketch") -> float:
        """Li–König unbiased estimator ``(m - C) / (1 - C)``, clipped."""
        self._check_compatible(other)
        if self.n_values == 0 and other.n_values == 0:
            return 1.0
        if self.n_values == 0 or other.n_values == 0:
            return 0.0
        matches = float(
            (self.fingerprints() == other.fingerprints()).mean()
        )
        return estimate_bbit_jaccard(matches, self.bits)

    def error_bound(self, z: float = Z_95) -> float:
        """Worst-case additive bound of the corrected estimator."""
        c = self.collision_floor
        return min(1.0, z * 0.5 / math.sqrt(self.size) / (1.0 - c))

    @property
    def nbytes(self) -> int:
        """Wire bytes of the packed payload."""
        return (-(-(self.size * self.bits) // 64)) * 8


def estimate_bbit_jaccard(match_fraction: float, bits: int) -> float:
    """Collision-corrected Jaccard from a lane match fraction."""
    c = 2.0 ** -bits
    return float(min(1.0, max(0.0, (match_fraction - c) / (1.0 - c))))


# ---- HyperLogLog ----------------------------------------------------------

#: Standard HLL bias constants alpha_r for small register counts.
_HLL_ALPHA_SMALL = {16: 0.673, 32: 0.697, 64: 0.709}


@dataclass
class HyperLogLogSketch:
    """HyperLogLog union-cardinality registers.

    ``registers`` holds ``2**precision`` rank-of-first-one maxima.
    Merging two sketches (elementwise ``max``) yields exactly the
    sketch of the union — the property the pairwise union-cardinality
    estimates in the distributed exchange rely on.
    """

    precision: int
    seed: int = 0
    registers: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Distinct values inserted via ``update`` (exact when batched
    #: inserts are disjoint); after ``merge``, the clamped
    #: union-cardinality estimate (see :func:`_clamp_union_count`).
    n_values: int = 0

    def __post_init__(self) -> None:
        if not 4 <= self.precision <= 18:
            raise ValueError(
                f"precision must be in [4, 18], got {self.precision}"
            )
        if self.registers is None:
            self.registers = np.zeros(1 << self.precision, dtype=np.uint8)

    @classmethod
    def from_values(
        cls, values, precision: int, seed: int = 0
    ) -> "HyperLogLogSketch":
        sk = cls(precision=precision, seed=seed)
        sk.update(values)
        return sk

    @property
    def n_registers(self) -> int:
        return 1 << self.precision

    def update(self, values) -> "HyperLogLogSketch":
        """Fold more attribute values in (streaming insertion)."""
        vals = _as_value_array(values)
        if vals.size == 0:
            return self
        self.n_values += vals.size
        h = hash_values(vals, self.seed)
        p = np.uint64(self.precision)
        idx = (h >> (np.uint64(64) - p)).astype(np.int64)
        rest = h & ((np.uint64(1) << (np.uint64(64) - p)) - np.uint64(1))
        # rho = number of leading zeros of the remaining 64-p bits, + 1.
        rho = (64 - self.precision + 1 - _bit_length_u64(rest)).astype(
            np.uint8
        )
        np.maximum.at(self.registers, idx, rho)
        return self

    def merge(self, other: "HyperLogLogSketch") -> "HyperLogLogSketch":
        """Sketch of the union: elementwise register maxima.

        The merged ``n_values`` is the register-based union-cardinality
        estimate, clamped to the exact ``[max, sum]`` window the part
        counts imply (so the inclusion–exclusion estimator stays sound
        on merged sketches).
        """
        self._check_compatible(other)
        out = HyperLogLogSketch(precision=self.precision, seed=self.seed)
        out.registers = np.maximum(self.registers, other.registers)
        out.n_values = _clamp_union_count(
            out.cardinality(), self.n_values, other.n_values
        )
        return out

    def _check_compatible(self, other: "HyperLogLogSketch") -> None:
        if self.precision != other.precision or self.seed != other.seed:
            raise ValueError(
                f"incompatible sketches: precision/seed "
                f"({self.precision}, {self.seed}) vs "
                f"({other.precision}, {other.seed})"
            )

    def cardinality(self) -> float:
        """Bias-corrected HLL estimate with linear-counting fallback."""
        return hll_cardinality(self.registers[None, :])[0]

    def jaccard(self, other: "HyperLogLogSketch") -> float:
        """Inclusion–exclusion against the exact per-sketch sizes."""
        self._check_compatible(other)
        if self.n_values == 0 and other.n_values == 0:
            return 1.0
        if self.n_values == 0 or other.n_values == 0:
            return 0.0
        union = self.merge(other).cardinality()
        if union <= 0.0:
            return 1.0
        inter = self.n_values + other.n_values - union
        return float(min(1.0, max(0.0, inter / union)))

    def error_bound(self, z: float = Z_95) -> float:
        """Worst-case (J = 1) additive bound via error propagation.

        ``J = (a + b - u) / u`` with exact ``a``, ``b`` gives
        ``sigma_J = (1 + J) * sigma_u / u <= 2 * 1.04 / sqrt(r)``.
        """
        return min(1.0, z * 2.0 * 1.04 / math.sqrt(self.n_registers))

    @property
    def nbytes(self) -> int:
        """Wire bytes of the register payload."""
        return int(self.registers.nbytes)


def hll_alpha(n_registers: int) -> float:
    """The HLL bias-correction constant ``alpha_r``."""
    if n_registers in _HLL_ALPHA_SMALL:
        return _HLL_ALPHA_SMALL[n_registers]
    return 0.7213 / (1.0 + 1.079 / n_registers)


def hll_cardinality(registers: np.ndarray) -> np.ndarray:
    """Row-wise HLL cardinality estimates of a ``(rows, r)`` array."""
    regs = np.ascontiguousarray(registers)
    if regs.ndim != 2:
        raise ValueError(f"expected a 2-D register array, got {regs.ndim}-D")
    r = regs.shape[1]
    harmonic = np.power(2.0, -regs.astype(np.float64)).sum(axis=1)
    raw = hll_alpha(r) * r * r / harmonic
    zeros = (regs == 0).sum(axis=1)
    out = raw.copy()
    small = (raw <= 2.5 * r) & (zeros > 0)
    with np.errstate(divide="ignore"):
        linear = r * np.log(r / np.maximum(zeros, 1).astype(np.float64))
    out[small] = linear[small]
    return out


# ---- factory --------------------------------------------------------------


def hll_precision_for(sketch_size: int) -> int:
    """Smallest HLL precision with at least ``sketch_size`` registers."""
    if sketch_size <= 0:
        raise ValueError(
            f"sketch size must be positive, got {sketch_size}"
        )
    return max(4, min(18, max(4, (sketch_size - 1).bit_length())))


def make_sketch(
    estimator: str, size: int, bits: int = 8, seed: int = 0
):
    """Build an empty sketch of the given estimator family.

    ``size`` is the sketch-size knob of :class:`SimilarityConfig`:
    bottom-``s`` for ``minhash``, lane count ``k`` for ``bbit_minhash``,
    and (rounded up to a power of two) register count for ``hll``.
    """
    if estimator == "minhash":
        return KMinValuesSketch(size=size, seed=seed)
    if estimator == "bbit_minhash":
        return BBitMinHashSketch(size=size, bits=bits, seed=seed)
    if estimator == "hll":
        return HyperLogLogSketch(
            precision=hll_precision_for(size), seed=seed
        )
    raise ValueError(
        f"estimator must be one of {SKETCH_ESTIMATORS}, got {estimator!r}"
    )


def sketch_error_bound(
    estimator: str, size: int, bits: int = 8, z: float = Z_95
) -> float:
    """The analytic worst-case bound of an estimator configuration.

    Also covers the opt-in ``"weighted_minhash"`` store family
    (:mod:`repro.semantics.wminhash`), whose bottom-``s`` estimator over
    the expanded multiset carries the same ``z * 0.5 / sqrt(s)`` bound
    as plain bottom-``s`` MinHash.
    """
    if estimator == "weighted_minhash":
        if size <= 0:
            raise ValueError(f"sketch size must be positive, got {size}")
        return min(1.0, z * 0.5 / math.sqrt(size))
    return make_sketch(estimator, size, bits).error_bound(z)
