"""Zero-row filtering: the distributed filter vector and its prefix sum.

A batch of the indicator matrix is hypersparse — the overwhelming
majority of its ``m-tilde`` rows contain no nonzero at all (for BIGSI,
densities around 4e-12).  SimilarityAtScale builds a sparse filter
vector ``f`` with ``f_k = 1`` iff row ``k`` is nonzero (Eq. 5), prefix
sums it, and re-indexes every nonzero to the compacted row space
(Eq. 6), so the bitmask packing that follows only spends words on rows
that can contribute to an intersection.

Two strategies are implemented, mirroring the paper:

* ``allgather`` — what the paper's *implementation* does (§IV-A):
  every rank contributes its locally observed nonzero row ids; the
  union is replicated on all ranks (a ``(max, x)``-semiring write
  followed by a read of the whole vector), and each rank prefix-sums
  locally.  Observed by the authors to be fastest at their scales.
* ``transpose`` — the *algorithm description* (§III-C): row ownership
  is block-partitioned; nonzero row ids travel to their owners
  (all-to-all), owners deduplicate and count, an exclusive scan over
  per-owner counts assigns compacted ids, and the (row -> compacted id)
  mapping travels back to the requesters.  BSP cost ``O(alpha + p
  beta)`` for the scan plus two h-relations.

Both yield the identical mapping: compacted ids ordered by global row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.comm import Communicator
from repro.sparse.coo import CooMatrix
from repro.util.partition import block_bounds


@dataclass
class FilterResult:
    """Outcome of zero-row filtering for one batch."""

    chunks: list[CooMatrix]
    n_nonzero_rows: int
    n_batch_rows: int

    @property
    def fill(self) -> float:
        """Fraction of batch rows that survived the filter."""
        return self.n_nonzero_rows / self.n_batch_rows if self.n_batch_rows else 0.0


def apply_filter(
    comm: Communicator, chunks: list[CooMatrix], strategy: str = "allgather"
) -> FilterResult:
    """Compact batch rows to the nonzero row space.

    ``chunks[r]`` holds reader rank ``r``'s batch-local coordinates; the
    returned chunks have rows renumbered to ``[0, n_nonzero_rows)``.
    """
    if len(chunks) != comm.size:
        raise ValueError(
            f"need one chunk per rank ({comm.size}), got {len(chunks)}"
        )
    if strategy == "allgather":
        return _filter_allgather(comm, chunks)
    if strategy == "transpose":
        return _filter_transpose(comm, chunks)
    if strategy == "off":
        m_batch = chunks[0].shape[0]
        return FilterResult(chunks=list(chunks), n_nonzero_rows=m_batch,
                            n_batch_rows=m_batch)
    raise ValueError(f"unknown filter strategy {strategy!r}")


def _filter_allgather(comm: Communicator, chunks: list[CooMatrix]) -> FilterResult:
    m_batch = chunks[0].shape[0]
    local_rows = [np.unique(c.rows) for c in chunks]
    comm.charge_compute([float(c.nnz) for c in chunks])
    gathered = comm.allgather(local_rows)[0]
    # Replicated merge: the (max, x)-semiring read of f on every rank,
    # followed by the local prefix sum over its nonzero entries.
    nonzero_rows = (
        np.unique(np.concatenate(gathered))
        if any(a.size for a in gathered)
        else np.empty(0, dtype=np.int64)
    )
    comm.charge_compute(float(sum(a.size for a in gathered)))
    mapped = []
    for chunk in chunks:
        new_rows = np.searchsorted(nonzero_rows, chunk.rows)
        mapped.append(
            CooMatrix(new_rows, chunk.cols, (int(nonzero_rows.size), chunk.shape[1]))
        )
    comm.charge_compute([float(c.nnz) for c in chunks])
    return FilterResult(mapped, int(nonzero_rows.size), m_batch)


def _filter_transpose(comm: Communicator, chunks: list[CooMatrix]) -> FilterResult:
    p = comm.size
    m_batch = chunks[0].shape[0]
    bounds = [block_bounds(m_batch, p, r) for r in range(p)]
    highs = np.array([hi for _, hi in bounds], dtype=np.int64)

    # (1) Transposition: ship each locally observed nonzero row id to its
    # block owner.
    send: list[list[np.ndarray | None]] = []
    for chunk in chunks:
        uniq = np.unique(chunk.rows)
        owners = np.searchsorted(highs, uniq, side="right")
        row: list[np.ndarray | None] = [None] * p
        for o in np.unique(owners):
            row[int(o)] = uniq[owners == o]
        send.append(row)
    comm.charge_compute([float(c.nnz) for c in chunks])
    received = comm.alltoallv(send)

    # (2) Owners deduplicate and count their nonzero rows.
    owned_rows: list[np.ndarray] = []
    for r in range(p):
        parts = [a for a in received[r] if a is not None and a.size]
        owned = np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)
        owned_rows.append(owned)
    comm.charge_compute([float(a.size) for a in owned_rows])

    # (3) Exclusive scan over counts assigns each owner its id offset.
    counts = [int(a.size) for a in owned_rows]
    offsets = comm.exscan(counts, op="sum", identity=0)
    total = counts[-1] + offsets[-1] if p else 0

    # (4) Owners send (row -> compacted id) pairs back to requesters.
    reply: list[list[np.ndarray | None]] = []
    for r in range(p):
        owned = owned_rows[r]
        ids = offsets[r] + np.arange(owned.size, dtype=np.int64)
        row: list[np.ndarray | None] = [None] * p
        for src in range(p):
            asked = received[r][src]
            if asked is None or asked.size == 0:
                continue
            pos = np.searchsorted(owned, asked)
            row[src] = np.stack([asked, ids[pos]])
        reply.append(row)
    replies = comm.alltoallv(reply)

    # (5) Requesters apply the mapping to their coordinates.
    mapped = []
    for r, chunk in enumerate(chunks):
        pairs = [a for a in replies[r] if a is not None]
        if pairs:
            table = np.concatenate(pairs, axis=1)
            order = np.argsort(table[0], kind="stable")
            keys, vals = table[0][order], table[1][order]
            new_rows = vals[np.searchsorted(keys, chunk.rows)]
        else:
            new_rows = np.empty(0, dtype=np.int64)
        mapped.append(CooMatrix(new_rows, chunk.cols, (total, chunk.shape[1])))
    comm.charge_compute([float(c.nnz) for c in chunks])
    return FilterResult(mapped, total, m_batch)
