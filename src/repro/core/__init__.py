"""SimilarityAtScale — the paper's primary contribution.

The distributed Jaccard pipeline (paper Listing 1):

1. read one batch of the indicator matrix ``A`` (Eq. 3),
2. filter zero rows with the distributed filter vector ``f`` and its
   prefix sum (Eq. 5-6) — :mod:`repro.core.filtering`,
3. compress row segments into ``b``-bit words (Eq. 7) and scatter the
   packed blocks onto the processor grid — :mod:`repro.core.bitmask`,
4. accumulate ``B += R^T R`` (popcount SUMMA / 2.5D) and the column
   sums ``a-hat`` — :mod:`repro.sparse.summa`,
5. after the last batch derive ``C = a-hat_i + a-hat_j - B`` and
   ``S = B / C``, ``D = 1 - S`` (Eq. 2) — :mod:`repro.core.similarity`.

:func:`repro.core.similarity.jaccard_similarity` is the one-call entry
point; :class:`repro.core.similarity.SimilarityAtScale` is the
configurable driver.
"""

from repro.core.config import SimilarityConfig
from repro.core.indicator import (
    CooSource,
    FileSource,
    IndicatorSource,
    SetSource,
    SyntheticSource,
)
from repro.core.result import BatchStats, SimilarityResult
from repro.core.similarity import SimilarityAtScale, jaccard_similarity
from repro.core.sketch import (
    ESTIMATORS,
    SKETCH_ESTIMATORS,
    make_sketch,
    sketch_error_bound,
)

__all__ = [
    "SimilarityConfig",
    "ESTIMATORS",
    "SKETCH_ESTIMATORS",
    "make_sketch",
    "sketch_error_bound",
    "IndicatorSource",
    "SetSource",
    "CooSource",
    "FileSource",
    "SyntheticSource",
    "BatchStats",
    "SimilarityResult",
    "SimilarityAtScale",
    "jaccard_similarity",
]
