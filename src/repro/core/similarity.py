"""The SimilarityAtScale driver (paper Listing 1 / Listing 2).

Orchestrates the full distributed Jaccard pipeline per batch —

    read -> filter zero rows -> bitmask-pack -> local Gram -> accumulate

— and, after the last batch, derives ``C``, ``S`` and ``D`` (Eq. 2) and
optionally gathers them to dense arrays.  The local Gram step is routed
per batch by the density-adaptive dispatcher
(:mod:`repro.sparse.dispatch`): dense batches run the word-tiled
popcount fast path (Eq. 7), hypersparse batches the outer-product
accumulation, and the decision is recorded in each batch's
:class:`~repro.core.result.BatchStats`.  The batch loop itself runs
under a schedule from :mod:`repro.runtime.pipeline`: ``pipeline="off"``
is the paper's serial Listing 1 order, ``"double_buffer"`` overlaps
batch ``b``'s Gram accumulation with batch ``b+1``'s
read/filter/pack in the cost model.  When a wire codec is configured
(``wire_codec != "raw"``), every tile, coordinate, and reduction
payload the loop puts on the network rides the codec layer
(:mod:`repro.runtime.codec`): genuinely encoded and decoded per hop,
charged at *encoded* size, tallied raw-vs-encoded in the ledger.  All
communication and compute is charged to the machine's BSP ledger; the
functional results are bit-identical to a serial computation over the
same input, whichever kernels run, whichever schedule is active, and
whichever wire codec is configured.

When a sketch estimator is configured (``estimator != "exact"``) the
same batched read loop feeds per-sample sketches instead of packed Gram
tiles, and the run produces an error-bounded *estimate* through the
sketch gather/estimate path of :mod:`repro.sparse.sketch_exchange` —
see :mod:`repro.core.sketch` and ``docs/sketches.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import predicted_gram_kernel
from repro.core.batching import BatchPlan, GridPlan, plan_batches, plan_grid
from repro.core.bitmask import distribute_and_pack, distribute_and_pack_1d
from repro.core.config import SimilarityConfig
from repro.core.filtering import apply_filter
from repro.core.indicator import IndicatorSource, SetSource
from repro.core.result import BatchStats, SimilarityResult
from repro.runtime.codec import WireCodec, resolve_wire_codec
from repro.runtime.comm import Communicator
from repro.runtime.engine import Machine
from repro.runtime.machine import laptop
from repro.runtime.pipeline import StageTiming, run_batches
from repro.runtime.topology import ProcessorGrid
from repro.sparse.dispatch import DispatchDecision, choose_kernel
from repro.sparse.distributed import DistDenseMatrix, DistVector
from repro.sparse.sketch_exchange import (
    SketchFamily,
    exchange_and_estimate,
    owned_samples,
)
from repro.sparse.summa import (
    colsums_2d,
    fiber_reduce,
    fiber_reduce_vector,
    gram_1d_allreduce,
    summa_gram_2d,
)


@dataclass(frozen=True)
class _PreparedBatch:
    """One batch after read/filter/pack, awaiting Gram accumulation.

    ``payload`` holds the packed words — per-layer
    :class:`~repro.sparse.distributed.DistWordMatrix` objects on the
    SUMMA path, per-rank :class:`~repro.sparse.bitmatrix.BitMatrix`
    blocks on the 1-D path.  The pipeline scheduler keeps at most one of
    these in flight beyond the batch being accumulated (the double
    buffer).
    """

    lo: int
    hi: int
    nnz: int
    nonzero_rows: int
    decision: DispatchDecision
    payload: list


def _batch_stats(
    prepared: list[_PreparedBatch],
    timings: list[StageTiming],
    wire_codec: str = "raw",
    estimator: str = "exact",
) -> list[BatchStats]:
    """Fuse prepared-batch metadata with the scheduler's stage timings."""
    return [
        BatchStats(
            index=t.index, row_lo=p.lo, row_hi=p.hi, nnz=p.nnz,
            nonzero_rows=p.nonzero_rows,
            simulated_seconds=t.effective_seconds,
            kernel=p.decision.kernel, density=p.decision.density,
            prepare_seconds=t.prepare_seconds,
            gram_seconds=t.accumulate_seconds,
            overlap_saved_seconds=t.overlap_saved_seconds,
            wire_codec=wire_codec,
            estimator=estimator,
        )
        for p, t in zip(prepared, timings, strict=True)
    ]


def _coerce_source(data) -> IndicatorSource:
    if isinstance(data, IndicatorSource) and not isinstance(data, (list, tuple)):
        return data
    if isinstance(data, (list, tuple)):
        return SetSource(data)
    raise TypeError(
        f"expected an IndicatorSource or a sequence of sample sets, "
        f"got {type(data).__name__}"
    )


class SimilarityAtScale:
    """Distributed all-pairs Jaccard similarity engine.

    Parameters
    ----------
    machine:
        The simulated machine to run on; defaults to a 4-rank laptop.
    config:
        Algorithm knobs; see :class:`~repro.core.config.SimilarityConfig`.
    """

    def __init__(
        self,
        machine: Machine | None = None,
        config: SimilarityConfig | None = None,
    ):
        self.machine = machine if machine is not None else Machine(laptop(4))
        self.config = config if config is not None else SimilarityConfig()

    # ---- public API -------------------------------------------------------

    def run(self, data) -> SimilarityResult:
        """Compute all-pairs Jaccard similarity of the given samples."""
        source = _coerce_source(data)
        if source.n <= 0:
            raise ValueError("need at least one data sample")
        before = self.machine.ledger.snapshot()
        if self.config.estimator != "exact":
            result = self._run_sketch(source)
        elif self.config.gram_algorithm == "1d_allreduce":
            result = self._run_1d(source)
        else:
            result = self._run_summa(source)
        result.cost = self.machine.ledger.diff(before)
        if self.config.validate and result.similarity is not None:
            self._validate(result)
        return result

    # ---- SUMMA / 2.5D path ---------------------------------------------------

    def _run_summa(self, source: IndicatorSource) -> SimilarityResult:
        machine, config = self.machine, self.config
        codec = resolve_wire_codec(config.wire_codec)
        n, m = source.n, source.m
        grid_plan = plan_grid(
            machine.p, n, machine.spec, config,
            z_hint=float(source.nnz_estimate()),
        )
        q, c = grid_plan.q, grid_plan.c
        active = grid_plan.active_ranks
        comm = machine.world.sub(range(active))
        grid = ProcessorGrid(comm, q, q, c)
        batch_plan = plan_batches(
            m, n, source.nnz_estimate(), machine.spec, config, grid_plan
        )

        b_layers = [DistDenseMatrix.zeros(grid, l, n, n) for l in range(c)]
        ahat_layers = [DistVector.zeros(grid, l, n) for l in range(c)]
        b_main: DistDenseMatrix | None = None
        ahat_main: DistVector | None = None
        bounds = batch_plan.bounds
        prepared_meta: list[_PreparedBatch] = []

        def prepare(idx: int) -> _PreparedBatch:
            lo, hi = bounds[idx]
            chunks, nnz = self._read_batch(comm, source, lo, hi)
            with machine.phase("filter"):
                filt = apply_filter(comm, chunks, config.filter_strategy)
            with machine.phase("pack"):
                layer_mats = distribute_and_pack(
                    comm, grid, filt.chunks, filt.n_nonzero_rows, n,
                    config.bit_width, codec=codec,
                )
            decision = self._dispatch(n, nnz, filt.n_nonzero_rows)
            return _PreparedBatch(
                lo, hi, nnz, filt.n_nonzero_rows, decision, layer_mats
            )

        def accumulate(idx: int, prep: _PreparedBatch) -> None:
            nonlocal b_main, ahat_main
            layer_mats = prep.payload
            kernel = prep.decision.kernel
            with machine.phase("spgemm"):
                if config.reduce_every_batch and c > 1:
                    partial_b = [
                        DistDenseMatrix.zeros(grid, l, n, n) for l in range(c)
                    ]
                    partial_a = [DistVector.zeros(grid, l, n) for l in range(c)]
                    for l in range(c):
                        summa_gram_2d(
                            layer_mats[l], partial_b[l], kernel=kernel,
                            codec=codec,
                        )
                        partial_a[l].add_inplace(
                            colsums_2d(layer_mats[l], codec=codec)
                        )
                    reduced_b = fiber_reduce(grid, partial_b, codec=codec)
                    reduced_a = fiber_reduce_vector(
                        grid, partial_a, codec=codec
                    )
                    if b_main is None:
                        b_main, ahat_main = reduced_b, reduced_a
                    else:
                        b_main.add_inplace(reduced_b)
                        ahat_main.add_inplace(reduced_a)
                else:
                    for l in range(c):
                        summa_gram_2d(
                            layer_mats[l], b_layers[l], kernel=kernel,
                            codec=codec,
                        )
                        ahat_layers[l].add_inplace(
                            colsums_2d(layer_mats[l], codec=codec)
                        )
            prepared_meta.append(prep)

        timings = run_batches(
            machine, len(bounds), prepare, accumulate, mode=config.pipeline
        )
        batches = _batch_stats(
            prepared_meta, timings, config.wire_codec, config.estimator
        )

        with machine.phase("reduce"):
            if b_main is None:
                b_main = fiber_reduce(grid, b_layers, codec=codec)
                ahat_main = fiber_reduce_vector(
                    grid, ahat_layers, codec=codec
                )
        assert ahat_main is not None
        sim_blocks, dist_blocks = self._derive_similarity(grid, b_main, ahat_main)

        result = SimilarityResult(
            n=n, m=m, config=config, machine_name=machine.spec.name,
            p=machine.p, grid_q=q, grid_c=c, cost=machine.ledger,
            batches=batches,
            planned_kernel=self._plan_kernel(source, batch_plan),
            pipeline_mode=config.pipeline,
        )
        if config.gather_result:
            with machine.phase("gather"):
                result.similarity = self._gather_blocks(
                    grid, sim_blocks, n, codec
                )
                if dist_blocks is not None:
                    result.distance = self._gather_blocks(
                        grid, dist_blocks, n, codec
                    )
                result.intersections = self._gather_blocks(
                    grid, b_main, n, codec
                )
                result.sample_sizes = self._gather_vector(
                    grid, ahat_main, codec
                )
        return result

    def _dispatch(
        self, n: int, nnz: int, n_nonzero_rows: int
    ) -> DispatchDecision:
        """Route one batch's local Gram by its post-filter density."""
        return choose_kernel(
            n_nonzero_rows, n, nnz, self.config.bit_width,
            policy=self.config.kernel_policy,
        )

    def _plan_kernel(
        self, source: IndicatorSource, batch_plan: BatchPlan
    ) -> str:
        """The planner's a-priori kernel prediction for an average batch.

        Uses only ``nnz_estimate`` (no data read), scaled to one batch —
        the prediction the adaptive dispatcher is expected to confirm at
        runtime on uniform inputs.
        """
        r = max(batch_plan.batch_count, 1)
        decision = predicted_gram_kernel(
            source.m / r, source.n, source.nnz_estimate() / r,
            self.config.bit_width, policy=self.config.kernel_policy,
        )
        return decision.kernel

    def _read_batch(
        self, comm: Communicator, source: IndicatorSource, lo: int, hi: int
    ):
        machine = self.machine
        with machine.phase("read"):
            chunks = comm.run_local(
                lambda r: source.read_batch(lo, hi, r, comm.size)
            )
            comm.charge_io(
                [source.read_bytes(lo, hi, r, comm.size) for r in range(comm.size)]
            )
            comm.charge_compute([float(ch.nnz) for ch in chunks])
        return chunks, sum(ch.nnz for ch in chunks)

    def _derive_similarity(
        self, grid: ProcessorGrid, b_main: DistDenseMatrix, ahat: DistVector
    ) -> tuple[DistDenseMatrix, DistDenseMatrix | None]:
        """Eq. 2 on the distributed blocks: ``S = B / (a_i + a_j - B)``."""
        machine, config = self.machine, self.config
        q = grid.rows
        with machine.phase("similarity"):
            # Part i of a-hat is replicated down grid column i; the row-wise
            # operand reaches rank (i, j) via a row broadcast from (i, i).
            row_parts: dict[int, np.ndarray] = {}
            for i in range(q):
                out = grid.row_comm(i, 0).bcast_from(ahat.parts[i], root=i)
                row_parts[i] = out[0]
            sim = DistDenseMatrix(
                grid=grid, layer=0, row_bounds=b_main.row_bounds,
                col_bounds=b_main.col_bounds, blocks={},
            )
            dist = (
                DistDenseMatrix(
                    grid=grid, layer=0, row_bounds=b_main.row_bounds,
                    col_bounds=b_main.col_bounds, blocks={},
                )
                if config.compute_distance
                else None
            )
            flops = []
            for i in range(q):
                a_i = row_parts[i].astype(np.float64)
                for j in range(q):
                    a_j = ahat.parts[j].astype(np.float64)
                    b_blk = b_main.blocks[(i, j)].astype(np.float64)
                    unions = a_i[:, None] + a_j[None, :] - b_blk
                    # J(empty, empty) = 1 by definition (§II-A).
                    s_blk = np.where(unions == 0.0, 1.0, b_blk / np.where(
                        unions == 0.0, 1.0, unions))
                    sim.blocks[(i, j)] = s_blk
                    if dist is not None:
                        dist.blocks[(i, j)] = 1.0 - s_blk
                    flops.append(4.0 * b_blk.size)
            grid.layer_comm(0).charge_compute(flops)
        return sim, dist

    def _gather_blocks(
        self,
        grid: ProcessorGrid,
        mat: DistDenseMatrix,
        n: int,
        codec: WireCodec | None = None,
    ) -> np.ndarray:
        # Each local rank contributes exactly its own block; the block's
        # face coordinates follow from the gather position, so the
        # payloads are bare arrays and ride the wire codec when active.
        comm = grid.layer_comm(0)
        payloads = [
            mat.blocks[divmod(local, grid.cols)] for local in range(comm.size)
        ]
        gathered = comm.gatherv(payloads, root=0, codec=codec)[0]
        out = np.zeros((n, n), dtype=next(iter(mat.blocks.values())).dtype)
        for local, blk in enumerate(gathered):
            i, j = divmod(local, grid.cols)
            rlo, rhi = mat.row_bounds[i]
            clo, chi = mat.col_bounds[j]
            out[rlo:rhi, clo:chi] = blk
        return out

    def _gather_vector(
        self,
        grid: ProcessorGrid,
        vec: DistVector,
        codec: WireCodec | None = None,
    ) -> np.ndarray:
        comm = grid.layer_comm(0)
        payloads: list = [None] * comm.size
        for t in range(grid.cols):
            payloads[grid.local_rank(0, t, 0)] = vec.parts[t]
        gathered = comm.gatherv(payloads, root=0, codec=codec)[0]
        out = np.zeros(vec.n, dtype=np.int64)
        for t in range(grid.cols):
            part = gathered[grid.local_rank(0, t, 0)]
            lo, hi = vec.col_bounds[t]
            out[lo:hi] = part
        return out

    # ---- 1-D all-reduce strawman ----------------------------------------------

    def _run_1d(self, source: IndicatorSource) -> SimilarityResult:
        machine, config = self.machine, self.config
        codec = resolve_wire_codec(config.wire_codec)
        n, m = source.n, source.m
        comm = machine.world
        grid_plan = GridPlan(q=1, c=comm.size)
        batch_plan = plan_batches(
            m, n, source.nnz_estimate(), machine.spec, config, grid_plan
        )
        b_total = np.zeros((n, n), dtype=np.int64)
        ahat = np.zeros(n, dtype=np.int64)
        bounds = batch_plan.bounds
        prepared_meta: list[_PreparedBatch] = []

        def prepare(idx: int) -> _PreparedBatch:
            lo, hi = bounds[idx]
            chunks, nnz = self._read_batch(comm, source, lo, hi)
            with machine.phase("filter"):
                filt = apply_filter(comm, chunks, config.filter_strategy)
            with machine.phase("pack"):
                blocks = distribute_and_pack_1d(
                    comm, filt.chunks, filt.n_nonzero_rows, n,
                    config.bit_width, codec=codec,
                )
            decision = self._dispatch(n, nnz, filt.n_nonzero_rows)
            return _PreparedBatch(
                lo, hi, nnz, filt.n_nonzero_rows, decision, blocks
            )

        def accumulate(idx: int, prep: _PreparedBatch) -> None:
            nonlocal b_total, ahat
            blocks = prep.payload
            with machine.phase("spgemm"):
                b_total += gram_1d_allreduce(
                    comm, blocks, kernel=prep.decision.kernel, codec=codec
                )
                partial = [blk.column_popcounts() for blk in blocks]
                comm.charge_compute([float(b.words.size) for b in blocks])
                ahat += comm.allreduce(partial, op="sum", codec=codec)[0]
            prepared_meta.append(prep)

        timings = run_batches(
            machine, len(bounds), prepare, accumulate, mode=config.pipeline
        )
        batches = _batch_stats(
            prepared_meta, timings, config.wire_codec, config.estimator
        )
        with machine.phase("similarity"):
            unions = ahat[:, None] + ahat[None, :] - b_total
            sim = np.where(
                unions == 0, 1.0, b_total / np.where(unions == 0, 1, unions)
            )
            comm.charge_compute(4.0 * sim.size)
        result = SimilarityResult(
            n=n, m=m, config=config, machine_name=machine.spec.name,
            p=machine.p, grid_q=1, grid_c=comm.size, cost=machine.ledger,
            batches=batches,
            planned_kernel=self._plan_kernel(source, batch_plan),
            pipeline_mode=config.pipeline,
        )
        if config.gather_result:
            result.similarity = sim
            result.intersections = b_total
            result.sample_sizes = ahat
            if config.compute_distance:
                result.distance = 1.0 - sim
        return result

    # ---- sketch estimation path ------------------------------------------------

    def _run_sketch(self, source: IndicatorSource) -> SimilarityResult:
        """Sketch-based estimation (``config.estimator != "exact"``).

        Streams the same batched reads as the exact drivers, but folds
        each rank's coordinates into per-sample sketches instead of
        packed Gram tiles; the all-pairs estimation happens after a
        codec-mediated sketch gather (see
        :mod:`repro.sparse.sketch_exchange`).  ``gram_algorithm`` and
        ``kernel_policy`` are ignored on this path.
        """
        machine, config = self.machine, self.config
        codec = resolve_wire_codec(config.wire_codec)
        n, m = source.n, source.m
        comm = machine.world
        grid_plan = GridPlan(q=1, c=comm.size)
        batch_plan = plan_batches(
            m, n, source.nnz_estimate(), machine.spec, config, grid_plan
        )
        families = [
            SketchFamily(
                estimator=config.estimator,
                sample_ids=owned_samples(n, r, comm.size),
                size=config.sketch_size,
                bits=config.sketch_bits,
                seed=config.sketch_seed,
            )
            for r in range(comm.size)
        ]
        bounds = batch_plan.bounds
        prepared_meta: list[_PreparedBatch] = []
        kernel = f"sketch:{config.estimator}"

        def prepare(idx: int):
            lo, hi = bounds[idx]
            chunks, nnz = self._read_batch(comm, source, lo, hi)
            return lo, hi, chunks, nnz

        def accumulate(idx: int, prep) -> None:
            lo, hi, chunks, nnz = prep
            with machine.phase("sketch"):
                comm.run_local(
                    lambda r: families[r].update_from_coo(chunks[r], lo)
                )
                comm.charge_compute(
                    [
                        families[r].update_flops(chunks[r].nnz)
                        for r in range(comm.size)
                    ],
                    kernel=kernel,
                )
            rows = [c.rows for c in chunks if c.nnz]
            nonzero_rows = (
                int(np.unique(np.concatenate(rows)).size) if rows else 0
            )
            decision = DispatchDecision(
                kernel=kernel, policy="sketch",
                density=nnz / max((hi - lo) * n, 1),
            )
            prepared_meta.append(
                _PreparedBatch(lo, hi, nnz, nonzero_rows, decision, [])
            )

        timings = run_batches(
            machine, len(bounds), prepare, accumulate, mode=config.pipeline
        )
        batches = _batch_stats(
            prepared_meta, timings, config.wire_codec, config.estimator
        )
        with machine.phase("exchange"):
            outcome = exchange_and_estimate(comm, families, n, codec=codec)

        result = SimilarityResult(
            n=n, m=m, config=config, machine_name=machine.spec.name,
            p=machine.p, grid_q=1, grid_c=comm.size, cost=machine.ledger,
            batches=batches,
            planned_kernel=kernel,
            pipeline_mode=config.pipeline,
            estimator=config.estimator,
            error_bound=outcome.error_bound,
            sketch_payload_bytes=outcome.sketch_payload_bytes,
        )
        if config.gather_result:
            result.similarity = outcome.similarity
            result.sample_sizes = outcome.sample_sizes
            if config.compute_distance:
                result.distance = 1.0 - outcome.similarity
        return result

    # ---- validation -------------------------------------------------------------

    @staticmethod
    def _validate(result: SimilarityResult) -> None:
        s = result.similarity
        if not np.allclose(s, s.T):
            raise AssertionError("similarity matrix is not symmetric")
        if np.any(s < 0) or np.any(s > 1):
            raise AssertionError("similarity values outside [0, 1]")
        if not np.allclose(np.diag(s), 1.0):
            raise AssertionError("self-similarity must be 1")
        if result.distance is not None and not np.allclose(
            result.distance, 1.0 - s
        ):
            raise AssertionError("distance must equal 1 - similarity")


def jaccard_similarity(
    data,
    machine: Machine | None = None,
    config: SimilarityConfig | None = None,
    **config_overrides,
) -> SimilarityResult:
    """One-call all-pairs Jaccard similarity.

    ``data`` may be a sequence of sample sets (any iterables of
    non-negative integers) or any :class:`IndicatorSource`.  Keyword
    overrides build a :class:`SimilarityConfig` when ``config`` is not
    given.

    >>> r = jaccard_similarity([{1, 2, 3}, {2, 3, 4}])
    >>> float(r.similarity[0, 1])
    0.5
    """
    if config is None:
        config = SimilarityConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either config or overrides, not both")
    return SimilarityAtScale(machine=machine, config=config).run(data)
