"""Bitmask compression and grid distribution of a filtered batch.

After filtering, each reader rank holds coordinates in the compacted row
space ``[0, n_nonzero_rows)``.  This module performs the §III-B step 3:
segments of ``b`` consecutive compacted rows become one ``b``-bit word,
and every packed word lands on its owning grid rank.

The row space is carved hierarchically, always on word boundaries:
first into ``c`` replication-layer slices (each layer contributes
``1/c`` of the batch's rows, per §III-C), then into ``q`` word-row
blocks within the layer's face.  A single all-to-all over the active
communicator moves every coordinate to its destination; each owner then
packs its block locally with an ``OR``-scatter.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.codec import WireCodec
from repro.runtime.comm import Communicator
from repro.runtime.topology import ProcessorGrid
from repro.sparse.bitmatrix import BitMatrix
from repro.sparse.coo import CooMatrix
from repro.sparse.distributed import DistWordMatrix, word_aligned_row_bounds
from repro.util.partition import block_bounds


def distribute_and_pack(
    comm: Communicator,
    grid: ProcessorGrid,
    chunks: list[CooMatrix],
    n_rows: int,
    n_cols: int,
    bit_width: int = 64,
    codec: WireCodec | None = None,
) -> list[DistWordMatrix]:
    """Scatter compacted coordinates onto the grid and bit-pack them.

    Returns one :class:`DistWordMatrix` per replication layer; layer
    ``l`` covers a word-aligned slice of the compacted batch rows
    (re-indexed to start at 0 within the layer).
    """
    if len(chunks) != comm.size:
        raise ValueError(
            f"need one chunk per active rank ({comm.size}), got {len(chunks)}"
        )
    if comm.size != grid.rows * grid.cols * grid.layers:
        raise ValueError("communicator size does not match grid")
    q = grid.rows
    layers = grid.layers

    layer_bounds = word_aligned_row_bounds(n_rows, layers, bit_width)
    layer_his = np.array([hi for _, hi in layer_bounds], dtype=np.int64)
    # Per-layer face blocking, in rows relative to the layer start.
    face_row_bounds = [
        word_aligned_row_bounds(hi - lo, q, bit_width) for lo, hi in layer_bounds
    ]
    col_bounds = [block_bounds(n_cols, grid.cols, t) for t in range(grid.cols)]
    col_his = np.array([hi for _, hi in col_bounds], dtype=np.int64)

    send: list[list[np.ndarray | None]] = []
    for chunk in chunks:
        row_msgs: list[np.ndarray | None] = [None] * comm.size
        if chunk.nnz:
            layer_ids = np.searchsorted(layer_his, chunk.rows, side="right")
            rel_rows = chunk.rows - np.array(
                [lo for lo, _ in layer_bounds], dtype=np.int64
            )[layer_ids]
            block_ids = np.empty(chunk.nnz, dtype=np.int64)
            for l in range(layers):
                sel = layer_ids == l
                if not np.any(sel):
                    continue
                his = np.array([hi for _, hi in face_row_bounds[l]], dtype=np.int64)
                block_ids[sel] = np.searchsorted(his, rel_rows[sel], side="right")
            col_ids = np.searchsorted(col_his, chunk.cols, side="right")
            dests = layer_ids * q * grid.cols + block_ids * grid.cols + col_ids
            for d in np.unique(dests):
                sel = dests == d
                row_msgs[int(d)] = np.stack([rel_rows[sel], chunk.cols[sel]])
        send.append(row_msgs)
    comm.charge_compute([float(c.nnz) for c in chunks])
    received = comm.alltoallv(send, codec=codec)

    matrices: list[DistWordMatrix] = []
    pack_flops: list[float] = [0.0] * comm.size
    for l in range(layers):
        mat = DistWordMatrix(
            grid=grid,
            layer=l,
            row_bounds=face_row_bounds[l],
            col_bounds=col_bounds,
            bit_width=bit_width,
        )
        for s in range(q):
            rlo, rhi = face_row_bounds[l][s]
            for t in range(grid.cols):
                clo, chi = col_bounds[t]
                local_rank = grid.local_rank(s, t, l)
                parts = [a for a in received[local_rank] if a is not None]
                if parts:
                    coords = np.concatenate(parts, axis=1)
                    rows = coords[0] - rlo
                    cols = coords[1] - clo
                else:
                    rows = np.empty(0, dtype=np.int64)
                    cols = np.empty(0, dtype=np.int64)
                mat.blocks[(s, t)] = BitMatrix.from_coo(
                    rows, cols, rhi - rlo, chi - clo, bit_width
                )
                pack_flops[local_rank] = float(rows.size)
        matrices.append(mat)
    comm.charge_compute(pack_flops)
    return matrices


def distribute_and_pack_1d(
    comm: Communicator,
    chunks: list[CooMatrix],
    n_rows: int,
    n_cols: int,
    bit_width: int = 64,
    codec: WireCodec | None = None,
) -> list[BitMatrix]:
    """1-D variant for the all-reduce strawman: full-width row slices.

    Every rank receives one word-aligned row slice spanning *all*
    columns; the Gram step then needs a full ``n x n`` all-reduce.
    """
    if len(chunks) != comm.size:
        raise ValueError(
            f"need one chunk per rank ({comm.size}), got {len(chunks)}"
        )
    bounds = word_aligned_row_bounds(n_rows, comm.size, bit_width)
    his = np.array([hi for _, hi in bounds], dtype=np.int64)
    send: list[list[np.ndarray | None]] = []
    for chunk in chunks:
        row_msgs: list[np.ndarray | None] = [None] * comm.size
        if chunk.nnz:
            dests = np.searchsorted(his, chunk.rows, side="right")
            for d in np.unique(dests):
                sel = dests == d
                row_msgs[int(d)] = np.stack([chunk.rows[sel], chunk.cols[sel]])
        send.append(row_msgs)
    comm.charge_compute([float(c.nnz) for c in chunks])
    received = comm.alltoallv(send, codec=codec)
    blocks = []
    flops = []
    for r in range(comm.size):
        rlo, rhi = bounds[r]
        parts = [a for a in received[r] if a is not None]
        if parts:
            coords = np.concatenate(parts, axis=1)
            rows = coords[0] - rlo
            cols = coords[1]
        else:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
        blocks.append(BitMatrix.from_coo(rows, cols, rhi - rlo, n_cols, bit_width))
        flops.append(float(rows.size))
    comm.charge_compute(flops)
    return blocks
