"""Batch and processor-grid planning.

The paper's tuning rules (§III-C):

* batch size: "we pick the batch size to use all available memory, so
  ``z = Theta(M p)``" — process as few, as large batches as the
  aggregate memory allows (larger batches amortize latency, Fig. 2c/2d);
* replication: "replicate ``B`` in so far as possible, so
  ``c = Theta(min(p, M p / n^2))``" — subject to that memory cap, pick
  the replication factor minimizing modelled communication.

The planner solves both against the machine model, while allowing the
config to pin either knob (the sensitivity benches sweep ``batch_count``
explicitly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import SimilarityConfig
from repro.runtime.machine import MachineSpec
from repro.util.partition import block_bounds


@dataclass(frozen=True)
class GridPlan:
    """The processor-grid shape chosen for a run."""

    q: int
    c: int

    @property
    def active_ranks(self) -> int:
        return self.q * self.q * self.c


@dataclass(frozen=True)
class BatchPlan:
    """Row-batching decision for a run."""

    batch_count: int
    m: int

    @property
    def bounds(self) -> list[tuple[int, int]]:
        return [block_bounds(self.m, self.batch_count, i)
                for i in range(self.batch_count)]


def plan_grid(
    p: int,
    n: int,
    spec: MachineSpec,
    config: SimilarityConfig,
    z_hint: float | None = None,
) -> GridPlan:
    """Choose the ``q x q x c`` grid for ``p`` ranks and ``n`` samples.

    Enumerates feasible ``(q, c)`` with ``q^2 c <= p``; keeps the
    combinations maximizing active ranks; among those, honours the
    memory cap ``c <= max(1, M p / n^2)`` and picks the ``c`` minimizing
    the modelled per-batch communication volume ``z / sqrt(c a) +
    c n^2 / a`` (the beta terms of the §III-C batch cost).
    """
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    memory_words = config.memory_fraction * spec.memory_per_rank / 8.0
    if config.replication is not None:
        c = min(config.replication, p)
        q = int(math.isqrt(p // c))
        if q < 1:
            raise ValueError(
                f"replication {config.replication} leaves no ranks for the face"
            )
        return GridPlan(q=q, c=c)
    c_cap = max(1.0, memory_words * p / float(max(n, 1)) ** 2)
    z = z_hint if z_hint is not None else memory_words * p
    candidates: list[tuple[int, float, GridPlan]] = []
    for c in range(1, p + 1):
        q = int(math.isqrt(p // c))
        if q < 1:
            continue
        active = q * q * c
        if c > c_cap and c > 1:
            continue
        comm_volume = z / math.sqrt(c * active) + c * float(n) ** 2 / active
        candidates.append((active, comm_volume, GridPlan(q=q, c=c)))
    if not candidates:
        return GridPlan(q=1, c=1)
    best_active = max(a for a, _, _ in candidates)
    in_play = [(v, g) for a, v, g in candidates if a == best_active]
    in_play.sort(key=lambda t: (t[0], t[1].c))
    return in_play[0][1]


def plan_batches(
    m: int,
    n: int,
    nnz_total: float,
    spec: MachineSpec,
    config: SimilarityConfig,
    grid: GridPlan,
) -> BatchPlan:
    """Choose the batch count ``r`` (Eq. 3).

    When unpinned, finds the smallest ``r`` whose per-rank footprint —
    read-stage COO coordinates, the packed word blocks, and the resident
    output replicas ``B``/``C``/``S`` — fits in the memory budget.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if config.batch_count is not None:
        return BatchPlan(batch_count=min(config.batch_count, m), m=m)
    budget = config.memory_fraction * spec.memory_per_rank
    q = grid.q
    active = grid.active_ranks
    # Resident output blocks per rank: B (int64), C (int64), S (float64).
    block_elems = math.ceil(n / q) ** 2
    resident = 3 * 8 * block_elems
    avail = budget - resident
    if avail <= 0:
        # Memory already saturated by the output; fall back to row batches
        # of one word each (degenerate but well-defined).
        return BatchPlan(batch_count=m, m=m)
    density = nnz_total / (float(m) * n) if n else 0.0

    def footprint(m_batch: int) -> float:
        nnz_batch = density * m_batch * n
        # COO during read/filter: 2 int64 per coordinate, spread over ranks.
        coo_bytes = 16.0 * nnz_batch / active
        # Post-filter packed words: at most one surviving row per nonzero.
        rows_nz = min(float(m_batch), nnz_batch)
        word_rows = rows_nz / config.bit_width + 1.0
        packed_bytes = (
            word_rows * math.ceil(n / q) * (config.bit_width // 8) / grid.c
        )
        return coo_bytes + packed_bytes

    r = 1
    while r < m and footprint(math.ceil(m / r)) > avail:
        r *= 2
    return BatchPlan(batch_count=min(r, m), m=m)
