"""Shared low-level utilities: bit manipulation, RNG, partitioning, units.

These helpers are deliberately free of any distributed-runtime concepts so
that every other subpackage (``runtime``, ``sparse``, ``core``, ...) can
depend on them without import cycles.
"""

from repro.util.bits import (
    pack_bits,
    popcount,
    popcount_words,
    unpack_bits,
    words_needed,
)
from repro.util.partition import (
    block_bounds,
    block_owner,
    block_size,
    even_chunks,
    round_robin_indices,
)
from repro.util.prng import derive_seed, rng_for
from repro.util.units import format_bytes, format_count, format_time

__all__ = [
    "pack_bits",
    "popcount",
    "popcount_words",
    "unpack_bits",
    "words_needed",
    "block_bounds",
    "block_owner",
    "block_size",
    "even_chunks",
    "round_robin_indices",
    "derive_seed",
    "rng_for",
    "format_bytes",
    "format_count",
    "format_time",
]
