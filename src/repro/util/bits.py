"""Bit-packing and popcount primitives.

The SimilarityAtScale algorithm (paper Eq. 7) compresses segments of ``b``
consecutive boolean rows of the indicator matrix into ``b``-bit machine
words, replacing inner products with ``popcount(x & y)``.  This module
provides the vectorized pack/unpack/popcount kernels used by
:mod:`repro.sparse.bitmatrix` and :mod:`repro.core.bitmask`.

All kernels operate on NumPy arrays of unsigned integers; ``bit_width``
selects the word type (8, 16, 32 or 64 bits — the paper uses 32/64, the
smaller widths exist for the ablation bench).
"""

from __future__ import annotations

import numpy as np

#: Mapping from supported bitmask widths to the NumPy dtype of one word.
WORD_DTYPES: dict[int, np.dtype] = {
    8: np.dtype(np.uint8),
    16: np.dtype(np.uint16),
    32: np.dtype(np.uint32),
    64: np.dtype(np.uint64),
}

SUPPORTED_WIDTHS = tuple(sorted(WORD_DTYPES))


def _check_width(bit_width: int) -> np.dtype:
    try:
        return WORD_DTYPES[bit_width]
    except KeyError:
        raise ValueError(
            f"bit_width must be one of {SUPPORTED_WIDTHS}, got {bit_width!r}"
        ) from None


def words_needed(n_rows: int, bit_width: int) -> int:
    """Number of ``bit_width``-bit words needed to store ``n_rows`` bits."""
    if n_rows < 0:
        raise ValueError(f"n_rows must be non-negative, got {n_rows}")
    _check_width(bit_width)
    return -(-n_rows // bit_width)


def pack_bits(mask: np.ndarray, bit_width: int = 64) -> np.ndarray:
    """Pack a boolean vector into a vector of ``bit_width``-bit words.

    Bit ``k`` of word ``w`` holds element ``w * bit_width + k`` (LSB-first
    within each word, mirroring the column-major segment masking of the
    paper's ``preprocessInput``).  The trailing partial word, if any, is
    zero-padded.

    Parameters
    ----------
    mask:
        1-D array interpretable as booleans.
    bit_width:
        Word width in bits; one of 8, 16, 32, 64.
    """
    dtype = _check_width(bit_width)
    arr = np.asarray(mask)
    if arr.ndim != 1:
        raise ValueError(f"pack_bits expects a 1-D array, got shape {arr.shape}")
    bits = arr.astype(bool)
    n_words = words_needed(bits.size, bit_width)
    padded = np.zeros(n_words * bit_width, dtype=bool)
    padded[: bits.size] = bits
    # np.packbits is MSB-first per byte; reverse within bytes to get
    # LSB-first, then view groups of bytes as little-endian words.
    chunks = padded.reshape(-1, 8)[:, ::-1]
    as_bytes = np.packbits(chunks, axis=1).reshape(-1)
    words = as_bytes.view(np.dtype(dtype).newbyteorder("<"))
    return np.ascontiguousarray(words.astype(dtype, copy=False))


def unpack_bits(words: np.ndarray, n_rows: int, bit_width: int = 64) -> np.ndarray:
    """Inverse of :func:`pack_bits`: expand words back into ``n_rows`` bools."""
    dtype = _check_width(bit_width)
    arr = np.ascontiguousarray(np.asarray(words, dtype=dtype))
    if arr.ndim != 1:
        raise ValueError(f"unpack_bits expects a 1-D array, got shape {arr.shape}")
    if n_rows > arr.size * bit_width:
        raise ValueError(
            f"cannot unpack {n_rows} rows from {arr.size} words of {bit_width} bits"
        )
    as_bytes = arr.astype(np.dtype(dtype).newbyteorder("<"), copy=False).view(np.uint8)
    bits = np.unpackbits(as_bytes.reshape(-1, 1), axis=1)[:, ::-1].reshape(-1)
    return bits[:n_rows].astype(bool)


#: True when the running NumPy exposes the hardware popcount ufunc.
HAVE_HW_POPCOUNT = hasattr(np, "bitwise_count")

#: Set-bit counts of every byte value — the portable popcount table.
BYTE_POPCOUNTS = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1, dtype=np.uint8)


def popcount_table(words: np.ndarray) -> np.ndarray:
    """Lookup-table popcount, elementwise, for any unsigned word array.

    Views each word as bytes and sums per-byte table entries; byte order
    within a word is irrelevant to the count, so no endianness handling
    is needed.  This is the portable fallback used when
    :data:`HAVE_HW_POPCOUNT` is false (NumPy < 2) and in tests that pin
    the hardware path against it.
    """
    arr = np.ascontiguousarray(words)
    if arr.size == 0:
        return np.zeros(arr.shape, dtype=np.uint8)
    as_bytes = arr.view(np.uint8).reshape(arr.shape + (arr.dtype.itemsize,))
    return BYTE_POPCOUNTS[as_bytes].sum(axis=-1, dtype=np.uint8)


def popcount_elementwise(words: np.ndarray, use_hw: bool | None = None) -> np.ndarray:
    """Elementwise popcount: hardware ufunc when available, else the LUT.

    ``use_hw`` forces a path (``True``/``False``); ``None`` auto-selects.
    """
    if use_hw is None:
        use_hw = HAVE_HW_POPCOUNT
    if use_hw:
        return np.bitwise_count(words)
    return popcount_table(words)


def popcount(x: np.ndarray | int) -> np.ndarray | int:
    """Number of set bits, elementwise (hardware popcount via NumPy>=2)."""
    if isinstance(x, (int, np.integer)):
        return int(np.bitwise_count(np.uint64(x)))
    return np.bitwise_count(x)


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across an entire word array."""
    if words.size == 0:
        return 0
    return int(np.bitwise_count(words).sum(dtype=np.int64))
