"""Deterministic, hierarchical random-number generation.

Every stochastic component (workload generators, read simulators, MinHash
permutations, synthetic matrices) derives its generator from a root seed
plus a string path, so that experiments are reproducible end to end and
sub-components can be re-run in isolation without replaying the whole
pipeline.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *path: object) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a component path.

    The derivation hashes the textual path, so it is stable across runs,
    Python versions, and process boundaries (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest(), "little") & (2**63 - 1)


def rng_for(root_seed: int, *path: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` keyed by ``root_seed`` and path."""
    return np.random.default_rng(derive_seed(root_seed, *path))
