"""Human-readable formatting for benchmark and report output."""

from __future__ import annotations

_BYTE_UNITS = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
_COUNT_UNITS = ["", "K", "M", "G", "T"]


def format_bytes(n: float) -> str:
    """Format a byte count with binary prefixes (e.g. ``1.50 MiB``)."""
    value = float(n)
    for unit in _BYTE_UNITS:
        if abs(value) < 1024.0 or unit == _BYTE_UNITS[-1]:
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_count(n: float) -> str:
    """Format a count with SI-style suffixes (e.g. ``32.0M``)."""
    value = float(n)
    for unit in _COUNT_UNITS:
        if abs(value) < 1000.0 or unit == _COUNT_UNITS[-1]:
            return f"{value:.1f}{unit}" if unit else f"{value:.0f}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Format a duration adaptively (µs/ms/s/min/h/days)."""
    s = float(seconds)
    if s < 0:
        return "-" + format_time(-s)
    if s < 1e-3:
        return f"{s * 1e6:.2f} us"
    if s < 1.0:
        return f"{s * 1e3:.2f} ms"
    if s < 120.0:
        return f"{s:.2f} s"
    if s < 7200.0:
        return f"{s / 60.0:.2f} min"
    if s < 172800.0:
        return f"{s / 3600.0:.2f} h"
    return f"{s / 86400.0:.2f} days"
