"""Index-space partitioning helpers used by the distributed layers.

Two layouts recur throughout the system:

* **block**: contiguous ranges, remainder spread over the leading ranks
  (the layout used for distributed matrix dimensions), and
* **round-robin / cyclic**: element ``i`` owned by rank ``i mod p`` (the
  layout the paper's ``readFiles`` uses to assign input files to ranks).
"""

from __future__ import annotations

import numpy as np


def block_size(total: int, parts: int, index: int) -> int:
    """Size of block ``index`` when ``total`` items split into ``parts``."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if not 0 <= index < parts:
        raise IndexError(f"block index {index} out of range for {parts} parts")
    base, rem = divmod(total, parts)
    return base + (1 if index < rem else 0)


def block_bounds(total: int, parts: int, index: int) -> tuple[int, int]:
    """Half-open ``[lo, hi)`` bounds of block ``index``."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if not 0 <= index < parts:
        raise IndexError(f"block index {index} out of range for {parts} parts")
    base, rem = divmod(total, parts)
    lo = index * base + min(index, rem)
    return lo, lo + base + (1 if index < rem else 0)


def block_owner(total: int, parts: int, item: int) -> int:
    """Rank owning global index ``item`` under the block layout."""
    if not 0 <= item < total:
        raise IndexError(f"item {item} out of range for total {total}")
    base, rem = divmod(total, parts)
    split = rem * (base + 1)
    if item < split:
        return item // (base + 1)
    if base == 0:
        raise IndexError(f"item {item} beyond the populated blocks")
    return rem + (item - split) // base


def even_chunks(values: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split ``values`` into ``parts`` block-contiguous chunks."""
    out = []
    for i in range(parts):
        lo, hi = block_bounds(len(values), parts, i)
        out.append(values[lo:hi])
    return out


def round_robin_indices(total: int, parts: int, index: int) -> np.ndarray:
    """Global indices owned by ``index`` under the cyclic layout."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if not 0 <= index < parts:
        raise IndexError(f"rank {index} out of range for {parts} parts")
    return np.arange(index, total, parts, dtype=np.int64)
