"""Weighted (multiset) Jaccard primitives over k-mer abundance counts.

The presence/absence pipeline reduces every sample to its *support*
(the sorted unique k-mer codes); abundance-aware workloads keep the
per-code counts produced by :func:`repro.genomics.counting.count_kmers`
and compare the resulting multisets.  For integer abundance vectors
``a``, ``b`` over the attribute space, the weighted Jaccard is

    ``J_w(a, b) = sum_v min(a_v, b_v) / sum_v max(a_v, b_v)``

— the min/max-over-counts accumulation, expressed here through the
``(+, min)`` / ``(+, max)`` semirings of :mod:`repro.sparse.semiring`
(:data:`~repro.sparse.semiring.SUM_MIN`,
:data:`~repro.sparse.semiring.SUM_MAX`) applied to the aligned counts of
the shared support.  On multiplicity-free inputs (every count 1) the
min is the set intersection and the max the set union, so ``J_w``
degenerates exactly to the unweighted Jaccard — the regression pinned in
``tests/semantics/``.

Conventions: a sample with no k-mers has mass 0; ``J_w`` of two empty
samples is 1.0 (the same convention as the unweighted ``J(∅, ∅) = 1``),
and 0.0 when exactly one side is empty.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.semiring import SUM_MAX, SUM_MIN

__all__ = [
    "coerce_counts",
    "intersection_union_mass",
    "total_mass",
    "weighted_jaccard_pair",
]


def coerce_counts(values, counts=None) -> tuple[np.ndarray, np.ndarray]:
    """Normalize a (values, counts) pair to sorted-unique + aligned form.

    ``values`` is any iterable of int codes (duplicates allowed);
    ``counts`` aligns positionally with it, or ``None`` for an implicit
    count of 1 per occurrence.  Returns ``(vals, cnts)`` with ``vals``
    sorted unique int64 and ``cnts`` the per-value total abundance
    (duplicate occurrences sum).  Counts must be positive — a zero-count
    value belongs in neither the multiset nor the support.
    """
    vals = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    vals = vals.astype(np.int64, copy=False).ravel()
    if counts is None:
        uniq, occur = np.unique(vals, return_counts=True)
        return uniq, occur.astype(np.int64)
    cnts = np.asarray(counts, dtype=np.int64).ravel()
    if cnts.shape != vals.shape:
        raise ValueError(
            f"counts must align with values: {cnts.size} count(s) "
            f"for {vals.size} value(s)"
        )
    if cnts.size and int(cnts.min()) < 1:
        raise ValueError("abundance counts must be >= 1")
    uniq, inverse = np.unique(vals, return_inverse=True)
    summed = np.zeros(uniq.size, dtype=np.int64)
    np.add.at(summed, inverse, cnts)
    return uniq, summed


def total_mass(counts) -> int:
    """Total k-mer mass ``sum_v a_v`` of one abundance vector."""
    arr = np.asarray(counts, dtype=np.int64)
    return int(arr.sum()) if arr.size else 0


def intersection_union_mass(
    a_vals: np.ndarray,
    a_counts: np.ndarray,
    b_vals: np.ndarray,
    b_counts: np.ndarray,
) -> tuple[int, int]:
    """``(sum min, sum max)`` of two normalized abundance vectors.

    Inputs must be in the :func:`coerce_counts` normal form.  The shared
    support contributes through the ``(+, min)`` / ``(+, max)``
    semirings; values exclusive to one side contribute their full count
    to the union mass only.

    >>> a_vals, a_cnt = coerce_counts([1, 2, 3], [2, 1, 4])
    >>> b_vals, b_cnt = coerce_counts([2, 3, 9], [5, 1, 1])
    >>> intersection_union_mass(a_vals, a_cnt, b_vals, b_cnt)
    (2, 12)
    """
    common, ia, ib = np.intersect1d(
        a_vals, b_vals, assume_unique=True, return_indices=True
    )
    if common.size:
        # The semirings' vectorized multiply (elementwise min / max)
        # accumulated under their shared SUM monoid.
        inter = int(SUM_MIN.multiply(a_counts[ia], b_counts[ib]).sum())
        shared_union = int(SUM_MAX.multiply(a_counts[ia], b_counts[ib]).sum())
    else:
        inter = shared_union = 0
    a_only = total_mass(a_counts) - (int(a_counts[ia].sum()) if common.size else 0)
    b_only = total_mass(b_counts) - (int(b_counts[ib].sum()) if common.size else 0)
    return inter, shared_union + a_only + b_only


def weighted_jaccard_pair(
    a_vals: np.ndarray,
    a_counts: np.ndarray,
    b_vals: np.ndarray,
    b_counts: np.ndarray,
) -> float:
    """Exact ``J_w`` of two normalized abundance vectors.

    >>> a_vals, a_cnt = coerce_counts([1, 2], [3, 1])
    >>> weighted_jaccard_pair(a_vals, a_cnt, a_vals, a_cnt)
    1.0
    """
    inter, union = intersection_union_mass(a_vals, a_counts, b_vals, b_counts)
    if union == 0:
        return 1.0
    return inter / union
