"""The similarity-measure registry: score, pruning bound, sketch story.

Every measure the service layer can serve (:data:`~repro.core.config.
SIMILARITY_MEASURES`) is one :class:`SimilarityMeasure` object defining
the three contracts the query cascade composes:

* :meth:`~SimilarityMeasure.score_from_stats` — how the Gram statistics
  (exact intersection counts + per-sample extents) map to a score.
  ``jaccard`` / ``containment`` / ``cosine`` all derive from the same
  intersections+sizes block; ``weighted_jaccard`` applies the identical
  rational form to min/max *mass* accumulations
  (:mod:`repro.semantics.weighted`).
* :meth:`~SimilarityMeasure.window` — the measure's exact candidate
  pruning bound as an inclusive window on the candidate extent (support
  size, or total mass for the weighted measure).  Every candidate
  outside the window provably scores below the threshold; the
  derivations live in ``docs/semantics.md``.
* :meth:`~SimilarityMeasure.sketch_score_bounds` — conservative
  ``[lower, upper]`` score bounds from a plain MinHash Jaccard estimate
  carrying an additive error bound, via the monotone transform
  ``i(J) = J (q + s) / (1 + J)`` (``weighted_jaccard`` consumes weighted
  MinHash estimates of ``J_w`` directly instead; see
  :mod:`repro.semantics.wminhash`).

Score conventions at the empty-set edge (shared by every exact path and
pinned in ``tests/semantics/``): a score of two empty samples is 1.0;
exactly one empty side scores 0.0 — except containment, whose empty
*query* is contained in everything (``c(∅, C) = 1.0``).

Worked example (doctested)::

    >>> import numpy as np
    >>> q = np.array([1, 2, 3, 4], dtype=np.int64)
    >>> c = np.array([3, 4, 5, 6, 7, 8], dtype=np.int64)
    >>> [round(get_measure(m).exact_pair(q, c), 6)
    ...  for m in ("jaccard", "containment", "cosine")]
    [0.25, 0.5, 0.408248]
    >>> get_measure("containment").exact_pair(c, q)  # asymmetric
    0.3333333333333333
    >>> get_measure("jaccard").window(100, 0.5)
    (50, 200)
    >>> get_measure("containment").window(100, 0.5)[0]
    50
    >>> get_measure("cosine").window(100, 0.5)
    (25, 400)
"""

from __future__ import annotations

import numpy as np

from repro.baselines.exact import intersection_size_sorted
from repro.core.config import SIMILARITY_MEASURES
from repro.semantics.weighted import (
    coerce_counts,
    total_mass,
    weighted_jaccard_pair,
)

__all__ = ["MEASURES", "SimilarityMeasure", "get_measure"]

_EPS = 1e-12
_I64_MAX = np.iinfo(np.int64).max


def _no_upper_bound(hi: float) -> int:
    """Clamp an unbounded/overflowing window edge to the int64 ceiling."""
    return _I64_MAX if hi >= _I64_MAX else int(hi)


class SimilarityMeasure:
    """One pluggable similarity semantics (see the module docstring).

    Attributes
    ----------
    name:
        Registry key; one of :data:`~repro.core.config.
        SIMILARITY_MEASURES`.
    bound_type:
        Shape of the pruning bound — ``"symmetric_window"`` (jaccard,
        cosine: a two-sided size-ratio window), ``"one_sided_window"``
        (containment: a lower size bound only), or ``"mass_window"``
        (weighted_jaccard: a two-sided window over total k-mer mass).
    weighted:
        Whether the measure consumes abundance counts (extent = total
        mass) rather than supports (extent = distinct-value count).
    prefilter_margin:
        Multiplier applied to the sketch family's additive error bound
        before pruning.  Measures estimated *through* the Jaccard
        transform (containment, cosine) invert their threshold into the
        low-``J`` region where boundary pairs concentrate, so they
        prune at a wider (~3 sigma) band than the measures whose
        decision boundary sits at the threshold itself.
    """

    name: str = ""
    bound_type: str = "symmetric_window"
    weighted: bool = False
    prefilter_margin: float = 1.0

    def extent(self, vals: np.ndarray, counts=None) -> int:
        """The pruning-relevant size of one sample (support or mass)."""
        return int(vals.size)

    def score_from_stats(
        self, inter: np.ndarray, q_extent: int, c_extents: np.ndarray
    ) -> np.ndarray:
        """Vectorized scores from exact intersection statistics."""
        raise NotImplementedError

    def window(self, q_extent: int, threshold: float) -> tuple[int, int]:
        """Inclusive candidate-extent window implied by ``score >= t``.

        The caller guarantees ``0 <= threshold <= 1``; ``threshold = 0``
        never prunes.
        """
        raise NotImplementedError

    def exact_pair(self, a_vals, b_vals, a_counts=None, b_counts=None) -> float:
        """Exact reference score of one pair of sorted-unique samples."""
        inter = intersection_size_sorted(a_vals, b_vals)
        return float(
            self.score_from_stats(
                np.array([inter], dtype=np.int64),
                int(a_vals.size),
                np.array([b_vals.size], dtype=np.int64),
            )[0]
        )

    def sketch_score_bounds(
        self,
        est: np.ndarray,
        bound: float,
        q_size: int,
        c_sizes: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Conservative ``[lower, upper]`` score bounds per candidate.

        ``est`` is the plain MinHash Jaccard estimate (the weighted
        measure overrides this to consume weighted-MinHash ``J_w``
        estimates), ``bound`` its additive analytic error at the
        configured confidence, widened by :attr:`prefilter_margin`.
        A candidate may be pruned only when ``upper < t``; top-k
        partial sorts must rank by ``lower``.
        """
        bound = bound * self.prefilter_margin
        j_lo = np.clip(est - bound, 0.0, 1.0)
        j_hi = np.clip(est + bound, 0.0, 1.0)
        return self._bounds_from_jaccard(j_lo, j_hi, q_size, c_sizes)

    def _bounds_from_jaccard(self, j_lo, j_hi, q_size, c_sizes):
        raise NotImplementedError

    @staticmethod
    def _inter_from_jaccard(j: np.ndarray, q_size: int, c_sizes: np.ndarray):
        """Invert ``J = i / (q + s - i)``: ``i(J) = J (q + s) / (1 + J)``,
        monotone increasing in ``J``."""
        total = np.asarray(c_sizes, dtype=np.float64) + float(q_size)
        return j * total / (1.0 + j)


class _Jaccard(SimilarityMeasure):
    name = "jaccard"
    bound_type = "symmetric_window"

    def score_from_stats(self, inter, q_extent, c_extents):
        inter = np.asarray(inter, dtype=np.float64)
        union = float(q_extent) + np.asarray(c_extents, dtype=np.float64) - inter
        return np.where(
            union == 0.0, 1.0, inter / np.where(union == 0.0, 1.0, union)
        )

    def window(self, q_extent, threshold):
        if threshold <= 0.0:
            return 0, _I64_MAX
        if q_extent == 0:
            # J(∅, C) > 0 only for C = ∅.
            return 0, 0
        lo = int(np.ceil(threshold * q_extent - _EPS))
        return lo, _no_upper_bound(np.floor(q_extent / threshold + _EPS))

    def _bounds_from_jaccard(self, j_lo, j_hi, q_size, c_sizes):
        return j_lo, j_hi


class _Containment(SimilarityMeasure):
    name = "containment"
    bound_type = "one_sided_window"
    prefilter_margin = 1.5

    def score_from_stats(self, inter, q_extent, c_extents):
        inter = np.asarray(inter, dtype=np.float64)
        shape = np.broadcast(inter, np.asarray(c_extents)).shape
        if q_extent == 0:
            # The empty query is contained in every candidate.
            return np.ones(shape, dtype=np.float64)
        return (inter / float(q_extent)).reshape(shape)

    def window(self, q_extent, threshold):
        if threshold <= 0.0 or q_extent == 0:
            return 0, _I64_MAX
        # c(Q, C) >= t needs i >= t|Q|, and i <= |C| always — the
        # one-sided bound |C| >= ceil(t |Q|); no upper bound exists.
        return int(np.ceil(threshold * q_extent - _EPS)), _I64_MAX

    def _bounds_from_jaccard(self, j_lo, j_hi, q_size, c_sizes):
        c = np.asarray(c_sizes, dtype=np.float64)
        if q_size == 0:
            ones = np.ones_like(c)
            return ones, ones
        i_lo = self._inter_from_jaccard(j_lo, q_size, c_sizes)
        i_hi = np.minimum(
            self._inter_from_jaccard(j_hi, q_size, c_sizes),
            np.minimum(float(q_size), c),
        )
        return i_lo / q_size, np.minimum(i_hi / q_size, 1.0)


class _Cosine(SimilarityMeasure):
    name = "cosine"
    bound_type = "symmetric_window"
    prefilter_margin = 1.5

    def score_from_stats(self, inter, q_extent, c_extents):
        inter = np.asarray(inter, dtype=np.float64)
        c = np.asarray(c_extents, dtype=np.float64)
        if q_extent == 0:
            return np.where(c == 0.0, 1.0, 0.0)
        denom = np.sqrt(float(q_extent) * c)
        return np.where(
            denom == 0.0, 0.0, inter / np.where(denom == 0.0, 1.0, denom)
        )

    def window(self, q_extent, threshold):
        if threshold <= 0.0:
            return 0, _I64_MAX
        if q_extent == 0:
            return 0, 0
        # cos = i / sqrt(qs) <= sqrt(min(q,s) / max(q,s)), so cos >= t
        # forces t^2 q <= s <= q / t^2.
        t2 = threshold * threshold
        lo = int(np.ceil(t2 * q_extent - _EPS))
        return lo, _no_upper_bound(np.floor(q_extent / t2 + _EPS))

    def _bounds_from_jaccard(self, j_lo, j_hi, q_size, c_sizes):
        c = np.asarray(c_sizes, dtype=np.float64)
        if q_size == 0:
            exact = np.where(c == 0.0, 1.0, 0.0)
            return exact, exact
        denom = np.sqrt(float(q_size) * c)
        safe = np.where(denom == 0.0, 1.0, denom)
        i_lo = self._inter_from_jaccard(j_lo, q_size, c_sizes)
        i_hi = np.minimum(
            self._inter_from_jaccard(j_hi, q_size, c_sizes),
            np.minimum(float(q_size), c),
        )
        lower = np.where(denom == 0.0, 0.0, i_lo / safe)
        upper = np.where(denom == 0.0, 0.0, i_hi / safe)
        return lower, np.minimum(upper, 1.0)


class _WeightedJaccard(SimilarityMeasure):
    name = "weighted_jaccard"
    bound_type = "mass_window"
    weighted = True

    def extent(self, vals, counts=None):
        if counts is None:
            return int(vals.size)
        return total_mass(counts)

    def score_from_stats(self, inter, q_extent, c_extents):
        # Identical rational form to Jaccard, over masses: the union
        # mass is m_Q + m_C - sum_min.
        inter = np.asarray(inter, dtype=np.float64)
        union = float(q_extent) + np.asarray(c_extents, dtype=np.float64) - inter
        return np.where(
            union == 0.0, 1.0, inter / np.where(union == 0.0, 1.0, union)
        )

    def window(self, q_extent, threshold):
        # sum_min <= min(m_Q, m_C) and sum_max >= max(m_Q, m_C) give
        # the mass-ratio window t m_Q <= m_C <= m_Q / t.  No bound on
        # the *support* size exists (a huge-count single value can
        # dominate the mass), which is why sharded weighted queries
        # consult every size band.
        if threshold <= 0.0:
            return 0, _I64_MAX
        if q_extent == 0:
            return 0, 0
        lo = int(np.ceil(threshold * q_extent - _EPS))
        return lo, _no_upper_bound(np.floor(q_extent / threshold + _EPS))

    def exact_pair(self, a_vals, b_vals, a_counts=None, b_counts=None):
        a_vals, a_counts = coerce_counts(a_vals, a_counts)
        b_vals, b_counts = coerce_counts(b_vals, b_counts)
        return weighted_jaccard_pair(a_vals, a_counts, b_vals, b_counts)

    def sketch_score_bounds(self, est, bound, q_size, c_sizes):
        # ``est`` here is a weighted-MinHash estimate of J_w itself
        # (plain sketches carry no information about J_w — see
        # docs/semantics.md for the two-sided counterexamples).
        return np.clip(est - bound, 0.0, 1.0), np.clip(est + bound, 0.0, 1.0)


#: The measure registry, keyed exactly by
#: :data:`~repro.core.config.SIMILARITY_MEASURES`.
MEASURES: dict[str, SimilarityMeasure] = {
    m.name: m for m in (_Jaccard(), _WeightedJaccard(), _Containment(), _Cosine())
}

assert tuple(MEASURES) == SIMILARITY_MEASURES


def get_measure(name: str) -> SimilarityMeasure:
    """Look up one measure; raises ``ValueError`` on an unknown name."""
    try:
        return MEASURES[name]
    except KeyError:
        raise ValueError(
            f"similarity must be one of {SIMILARITY_MEASURES}, got {name!r}"
        ) from None
