"""Weighted MinHash: bottom-s sketches of integer-abundance multisets.

The weighted Jaccard of integer abundance vectors equals the plain
Jaccard of their *expanded* sets — replace every value ``v`` of count
``c`` by the replica pairs ``(v, 0), (v, 1), ..., (v, c-1)``:

    ``J_w(a, b) = |expand(a) ∩ expand(b)| / |expand(a) ∪ expand(b)|``

because the replicas shared by both sides number exactly
``min(a_v, b_v)`` per value.  A bottom-``s`` sketch over 64-bit hashes
of the replica pairs therefore estimates ``J_w`` with exactly the
machinery (and the analytic error bound) of the unweighted
:class:`~repro.core.sketch.KMinValuesSketch` — the Mash estimator reads
``J_w`` off the shared fraction of the union's bottom-``s``, and the
worst-case 95% additive bound is ``z * 0.5 / sqrt(s)``.

The sketch is deterministic in ``(seed, multiset)``: replica hashes mix
the value hash with the replica index, so neither input order nor
batching across *disjoint* value sets changes the result.  Re-inserting
a value unions its replica sets (the multiset tracked is the
elementwise max of the inserts), matching expanded-set semantics.

Update cost is ``O(total mass)`` — the price of exact expanded-set
equivalence; index stores build one sketch per genome at append time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.sketch import Z_95, hash_values, splitmix64
from repro.semantics.weighted import coerce_counts

__all__ = ["WEIGHTED_MINHASH_FAMILY", "WeightedMinHashSketch"]

#: Sketch-family name under which index stores persist these payloads.
#: Deliberately *not* part of ``repro.core.sketch.SKETCH_ESTIMATORS``:
#: stores opt in (the family needs abundance counts at append time).
WEIGHTED_MINHASH_FAMILY = "weighted_minhash"

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _replica_hashes(vals: np.ndarray, cnts: np.ndarray, seed: int) -> np.ndarray:
    """64-bit hashes of the expanded ``(value, replica)`` pairs."""
    base = hash_values(vals, seed)
    expanded = np.repeat(base, cnts)
    starts = np.cumsum(cnts) - cnts
    replica = (
        np.arange(expanded.size, dtype=np.int64) - np.repeat(starts, cnts)
    ).astype(np.uint64)
    with np.errstate(over="ignore"):
        keyed = expanded ^ (replica * _GOLDEN)
    return splitmix64(keyed)


@dataclass
class WeightedMinHashSketch:
    """Bottom-``size`` sketch of an expanded abundance multiset.

    ``hashes`` always holds at most ``size`` sorted unique replica
    hashes; multisets with total mass below ``size`` keep everything
    (the estimate then degenerates to exact weighted Jaccard).
    ``mass`` tracks the total inserted k-mer mass.
    """

    size: int
    seed: int = 0
    hashes: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint64)
    )
    mass: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"sketch size must be positive, got {self.size}")

    @classmethod
    def from_weighted(
        cls, values, counts=None, size: int = 256, seed: int = 0
    ) -> "WeightedMinHashSketch":
        sk = cls(size=size, seed=seed)
        sk.update(values, counts)
        return sk

    def update(self, values, counts=None) -> "WeightedMinHashSketch":
        """Fold more (value, count) abundance in (streaming insertion)."""
        vals, cnts = coerce_counts(values, counts)
        if vals.size == 0:
            return self
        fresh = np.unique(_replica_hashes(vals, cnts, self.seed))
        merged = np.union1d(self.hashes, fresh)
        self.mass += int(cnts.sum())
        self.hashes = merged[: self.size]
        return self

    def _check_compatible(self, other: "WeightedMinHashSketch") -> None:
        if self.size != other.size or self.seed != other.seed:
            raise ValueError(
                f"incompatible sketches: size/seed "
                f"({self.size}, {self.seed}) vs ({other.size}, {other.seed})"
            )

    def jaccard(self, other: "WeightedMinHashSketch") -> float:
        """Mash estimator of ``J_w``: shared fraction of the union's
        bottom-``s`` over the expanded multisets."""
        self._check_compatible(other)
        if self.hashes.size == 0 and other.hashes.size == 0:
            return 1.0
        union = np.union1d(self.hashes, other.hashes)[: self.size]
        if union.size == 0:
            return 1.0
        in_a = np.isin(union, self.hashes, assume_unique=True)
        in_b = np.isin(union, other.hashes, assume_unique=True)
        return float((in_a & in_b).sum() / union.size)

    def error_bound(self, z: float = Z_95) -> float:
        """Worst-case (J_w = 1/2) additive bound on the estimate."""
        return min(1.0, z * 0.5 / math.sqrt(self.size))

    @property
    def nbytes(self) -> int:
        """Wire bytes of the hash payload."""
        return int(self.hashes.nbytes)
