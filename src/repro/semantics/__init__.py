"""Similarity semantics: pluggable measures over one compute core.

One Gram/statistics core, many similarity measures on top (the shape of
Joubert et al.'s multi-metric vector-similarity family): this package
defines the :class:`~repro.semantics.measures.SimilarityMeasure`
registry — ``jaccard``, ``weighted_jaccard``, ``containment``,
``cosine`` — each bundling its score formula, its exact candidate
pruning bound, and its sketch estimation story.  The service layer
(:mod:`repro.service`) threads the configured measure
(``SimilarityConfig.similarity``, knob ``query.similarity``) through
plan compilation, the query cascade, batching, shard fan-out, caching,
and the CLI; :mod:`repro.analytics.clustering` accepts the same knob.

See ``docs/semantics.md`` for formulas and bound derivations.
"""

from repro.semantics.measures import (
    MEASURES,
    SimilarityMeasure,
    get_measure,
)
from repro.semantics.weighted import (
    coerce_counts,
    intersection_union_mass,
    total_mass,
    weighted_jaccard_pair,
)
from repro.semantics.wminhash import (
    WEIGHTED_MINHASH_FAMILY,
    WeightedMinHashSketch,
)

__all__ = [
    "MEASURES",
    "SimilarityMeasure",
    "WEIGHTED_MINHASH_FAMILY",
    "WeightedMinHashSketch",
    "coerce_counts",
    "get_measure",
    "intersection_union_mass",
    "total_mass",
    "weighted_jaccard_pair",
]
