"""Communication-avoiding distributed Gram products.

Implements the parallelization of §III-C: given the compressed batch
``R`` (an ``h x n`` word matrix) on a ``q x q`` grid face, compute the
dense contribution ``B += R^T R`` with SUMMA-style panel broadcasts, and
— when the grid has ``c > 1`` replication layers — reduce the per-layer
partial results across fibers (the 2.5D scheme: each layer handles
``1/c`` of the batch rows against its own copy of ``B``).

Per stage ``s`` the algorithm moves the word-row panel ``R_{s,*}``:

1. every owner ``(s, t)`` broadcasts ``R_{s,t}`` down grid column ``t``
   (after which rank ``(i, j)`` holds ``R_{s,j}``, and in particular the
   diagonal rank ``(i, i)`` holds ``R_{s,i}``);
2. every diagonal rank ``(i, i)`` broadcasts ``R_{s,i}`` along grid row
   ``i`` (after which rank ``(i, j)`` also holds ``R_{s,i}``);
3. rank ``(i, j)`` accumulates ``B_{ij} += popcount-gram(R_{s,i},
   R_{s,j})`` locally.

Each panel block thus crosses the machine ``O(log q)`` times per
dimension, giving the ``O(z / sqrt(cp))`` per-rank communication volume
of the paper's analysis (with the ``c n^2 / p``-sized fiber reduction
when ``c > 1``).

A 1-D all-reduce variant (:func:`gram_1d_allreduce`) is also provided:
it is the communication-*inefficient* strategy (every rank reduces the
full ``n x n``) that MapReduce-style implementations effectively perform,
used as the ablation baseline.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.codec import WireCodec
from repro.runtime.comm import Communicator
from repro.runtime.topology import ProcessorGrid
from repro.sparse.bitmatrix import BitMatrix
from repro.sparse.dispatch import resolve_kernel
from repro.sparse.distributed import DistDenseMatrix, DistVector, DistWordMatrix
from repro.sparse.spgemm import colsum_bitpacked


def summa_gram_2d(
    matrix: DistWordMatrix,
    out: DistDenseMatrix,
    block_bytes: int | None = None,
    kernel: str = "bitpacked",
    codec: WireCodec | None = None,
) -> None:
    """Accumulate ``out += R^T R`` on one grid layer via SUMMA.

    ``matrix`` and ``out`` must live on the same (square) face.
    ``kernel`` names the local Gram kernel every face rank runs in step
    (3) — one of :data:`repro.sparse.dispatch.KERNEL_NAMES`, normally
    chosen per batch by the density-adaptive dispatcher.  The compute
    charge carries the kernel label so the ledger's per-kernel breakdown
    stays faithful to what actually ran.  ``codec`` routes every panel
    broadcast through the wire-format codec layer
    (:mod:`repro.runtime.codec`): tiles are genuinely encoded and
    decoded (bit-exact round trip), the ledger is charged *encoded*
    bytes, and raw-vs-encoded volume is tallied per codec.
    """
    grid = matrix.grid
    layer = matrix.layer
    if grid.rows != grid.cols:
        raise ValueError(
            f"SUMMA gram requires a square face, got {grid.rows}x{grid.cols}"
        )
    q = grid.rows
    if out.grid is not grid or len(out.row_bounds) != q:
        raise ValueError("output matrix must live on the same face")

    kernel_fn = resolve_kernel(kernel)
    kernel_kwargs = {} if block_bytes is None else {"block_bytes": block_bytes}
    for s in range(q):
        # (1) column broadcasts of panel s: owner (s, t) -> column t.
        for t in range(q):
            col = grid.col_comm(t, layer)
            col.bcast_from(matrix.block(s, t), root=s, codec=codec)
        # (2) row broadcasts from the diagonal: (i, i) -> row i.
        for i in range(q):
            row = grid.row_comm(i, layer)
            row.bcast_from(matrix.block(s, i), root=i, codec=codec)
        # (3) local gram on every face rank, through the dispatched kernel.
        flops = []
        working = 0.0
        for i in range(q):
            left = matrix.block(s, i)
            for j in range(q):
                right = matrix.block(s, j)
                res = kernel_fn(left, right, **kernel_kwargs)
                out.blocks[(i, j)] += res.value
                flops.append(res.flops)
                working = max(working, res.working_set_bytes)
        grid.layer_comm(layer).charge_compute(
            flops, working_set_bytes=working, kernel=kernel
        )


def fiber_reduce(
    grid: ProcessorGrid,
    partials: list[DistDenseMatrix],
    codec: WireCodec | None = None,
) -> DistDenseMatrix:
    """Sum per-layer partial results across replication fibers.

    Every fiber ``(i, j)`` all-reduces its ``c`` layer blocks; the result
    is returned on layer 0 (all layers hold identical copies afterwards,
    as in the 2.5D scheme).
    """
    if len(partials) != grid.layers:
        raise ValueError(
            f"need one partial per layer ({grid.layers}), got {len(partials)}"
        )
    if grid.layers == 1:
        return partials[0]
    base = partials[0]
    result = DistDenseMatrix(
        grid=grid,
        layer=0,
        row_bounds=base.row_bounds,
        col_bounds=base.col_bounds,
        blocks={},
    )
    for i in range(grid.rows):
        for j in range(grid.cols):
            fiber = grid.fiber_comm(i, j)
            vals = [p.blocks[(i, j)] for p in partials]
            result.blocks[(i, j)] = fiber.allreduce(
                vals, op="sum", codec=codec
            )[0]
    return result


def colsums_2d(
    matrix: DistWordMatrix, codec: WireCodec | None = None
) -> DistVector:
    """Distributed column popcounts: the batch contribution to ``a-hat``.

    Each rank popcounts its block's columns; column communicators reduce
    over the ``q`` word-row blocks, leaving part ``t`` replicated down
    grid column ``t``.
    """
    grid = matrix.grid
    layer = matrix.layer
    out = DistVector.zeros(grid, layer, matrix.n_cols)
    flops = []
    for t in range(grid.cols):
        partials = []
        for s in range(grid.rows):
            res = colsum_bitpacked(matrix.block(s, t))
            partials.append(res.value)
            flops.append(res.flops)
        col = grid.col_comm(t, layer)
        out.parts[t] = col.allreduce(partials, op="sum", codec=codec)[0]
    grid.layer_comm(layer).charge_compute(flops)
    return out


def fiber_reduce_vector(
    grid: ProcessorGrid,
    partials: list[DistVector],
    codec: WireCodec | None = None,
) -> DistVector:
    """Sum per-layer ``a-hat`` contributions across replication layers."""
    if len(partials) != grid.layers:
        raise ValueError(
            f"need one partial per layer ({grid.layers}), got {len(partials)}"
        )
    if grid.layers == 1:
        return partials[0]
    base = partials[0]
    result = DistVector(
        grid=grid, layer=0, col_bounds=base.col_bounds, parts=[None] * grid.cols
    )
    for t in range(grid.cols):
        # One representative fiber per column block (row 0); the vector is
        # replicated down columns so a single fiber reduction suffices.
        fiber = grid.fiber_comm(0, t)
        vals = [p.parts[t] for p in partials]
        result.parts[t] = fiber.allreduce(vals, op="sum", codec=codec)[0]
    return result


def gram_1d_allreduce(
    comm: Communicator,
    local_blocks: list[BitMatrix],
    kernel: str = "bitpacked",
    codec: WireCodec | None = None,
) -> np.ndarray:
    """Communication-inefficient baseline: local grams + full allreduce.

    Every rank computes a full ``n x n`` Gram of its word-row slice and
    participates in an ``n^2``-sized all-reduce — the allreduce-over-
    reducers pattern (§I) whose communication volume does not shrink with
    ``sqrt(p)``.  Functionally identical to SUMMA; the local Gram runs
    through the named dispatch kernel.
    """
    if len(local_blocks) != comm.size:
        raise ValueError(
            f"need one block per rank ({comm.size}), got {len(local_blocks)}"
        )
    kernel_fn = resolve_kernel(kernel)
    n = local_blocks[0].n_cols
    partials = []
    flops = []
    for blk in local_blocks:
        if blk.n_cols != n:
            raise ValueError("all blocks must span the full column range")
        res = kernel_fn(blk)
        partials.append(res.value)
        flops.append(res.flops)
    comm.charge_compute(flops, kernel=kernel)
    return comm.allreduce(partials, op="sum", codec=codec)[0]
