"""Bit-packed column-block matrices (paper §III-B, technique 3).

After zero-row filtering, SimilarityAtScale packs segments of ``b``
consecutive rows of each column into one ``b``-bit word, turning the
boolean matrix ``A-bar`` of shape ``m-tilde x n`` into a word matrix
``A-hat`` of shape ``(m-tilde / b) x n`` over ``S = {0, ..., 2^b - 1}``.
The Gram product then runs over the popcount-AND semiring (Eq. 7):

    s_ij = sum_k popcount(a_ki AND a_kj)

:class:`BitMatrix` stores the packed words *densely* per column — the
right layout for the post-filter batches, whose word-rows are dense by
construction (every surviving row segment contains at least one set bit;
columns are the samples being compared).  The dense-word layout is what
makes the popcount kernel a contiguous, vectorizable sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.bits import WORD_DTYPES, unpack_bits, words_needed


@dataclass
class BitMatrix:
    """A boolean matrix packed ``bit_width`` rows per word.

    ``words`` has shape ``(n_word_rows, n_cols)``; bit ``k`` of
    ``words[w, j]`` is row ``w * bit_width + k`` of column ``j``.
    """

    words: np.ndarray
    n_rows: int
    bit_width: int

    def __post_init__(self) -> None:
        if self.bit_width not in WORD_DTYPES:
            raise ValueError(f"unsupported bit width {self.bit_width}")
        expect_dtype = WORD_DTYPES[self.bit_width]
        self.words = np.ascontiguousarray(self.words, dtype=expect_dtype)
        if self.words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {self.words.shape}")
        need = words_needed(self.n_rows, self.bit_width)
        if self.words.shape[0] != need:
            raise ValueError(
                f"expected {need} word rows for {self.n_rows} bit rows at "
                f"b={self.bit_width}, got {self.words.shape[0]}"
            )

    # ---- constructors ---------------------------------------------------

    @classmethod
    def zeros(cls, n_rows: int, n_cols: int, bit_width: int = 64) -> "BitMatrix":
        dtype = WORD_DTYPES[bit_width]
        shape = (words_needed(n_rows, bit_width), n_cols)
        return cls(np.zeros(shape, dtype=dtype), n_rows, bit_width)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        n_rows: int,
        n_cols: int,
        bit_width: int = 64,
    ) -> "BitMatrix":
        """Pack coordinates; duplicates collapse through the OR."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("row index out of bounds")
        if cols.size and (cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError("column index out of bounds")
        out = cls.zeros(n_rows, n_cols, bit_width)
        if rows.size:
            word_rows = rows // bit_width
            dtype = WORD_DTYPES[bit_width]
            bits = (rows % bit_width).astype(dtype)
            masks = (dtype.type(1) << bits).astype(dtype)
            np.bitwise_or.at(out.words, (word_rows, cols), masks)
        return out

    @classmethod
    def from_dense(cls, dense: np.ndarray, bit_width: int = 64) -> "BitMatrix":
        arr = np.asarray(dense).astype(bool)
        rows, cols = np.nonzero(arr)
        return cls.from_coo(rows, cols, arr.shape[0], arr.shape[1], bit_width)

    # ---- properties ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Logical (bit-rows, cols) shape."""
        return (self.n_rows, self.words.shape[1])

    @property
    def n_cols(self) -> int:
        return self.words.shape[1]

    @property
    def n_word_rows(self) -> int:
        return self.words.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)

    @property
    def nnz(self) -> int:
        """Number of set bits (stored nonzeros of the boolean matrix)."""
        if self.words.size == 0:
            return 0
        return int(np.bitwise_count(self.words).sum(dtype=np.int64))

    # ---- operations -------------------------------------------------------

    def column_popcounts(self) -> np.ndarray:
        """Set bits per column — the batch contribution to ``a-hat``."""
        if self.words.size == 0:
            return np.zeros(self.n_cols, dtype=np.int64)
        return np.bitwise_count(self.words).sum(axis=0, dtype=np.int64)

    def nonzero_bits(self) -> tuple[np.ndarray, np.ndarray]:
        """Bit-level coordinates ``(rows, cols)`` of every set bit.

        Cost is proportional to the number of nonzero *words* plus set
        bits, so it is cheap exactly in the hypersparse regime where the
        outer-product Gram kernel wants row/column coordinates back.
        Coordinates are sorted by row, then column.
        """
        word_rows, cols = np.nonzero(self.words)
        if word_rows.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        vals = np.ascontiguousarray(self.words[word_rows, cols])
        little = vals.astype(vals.dtype.newbyteorder("<"), copy=False)
        as_bytes = little.view(np.uint8).reshape(vals.size, -1)
        bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
        entry, bit = np.nonzero(bits)
        rows = word_rows[entry] * self.bit_width + bit
        out_cols = cols[entry]
        order = np.lexsort((out_cols, rows))
        return rows[order].astype(np.int64), out_cols[order].astype(np.int64)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=bool)
        for j in range(self.n_cols):
            out[:, j] = unpack_bits(self.words[:, j], self.n_rows, self.bit_width)
        return out

    def col_slice(self, lo: int, hi: int) -> "BitMatrix":
        if not 0 <= lo <= hi <= self.n_cols:
            raise IndexError(f"column slice [{lo},{hi}) out of range {self.n_cols}")
        return BitMatrix(self.words[:, lo:hi].copy(), self.n_rows, self.bit_width)

    def word_row_slice(self, lo: int, hi: int) -> "BitMatrix":
        """Slice whole word-rows (row granularity = ``bit_width`` bits)."""
        if not 0 <= lo <= hi <= self.n_word_rows:
            raise IndexError(
                f"word-row slice [{lo},{hi}) out of range {self.n_word_rows}"
            )
        n_rows = min(self.n_rows - lo * self.bit_width, (hi - lo) * self.bit_width)
        n_rows = max(n_rows, 0)
        return BitMatrix(self.words[lo:hi].copy(), n_rows, self.bit_width)

    def stack(self, other: "BitMatrix") -> "BitMatrix":
        """Vertical concatenation at word-row granularity.

        Requires this matrix's bit rows to fill its words exactly (true for
        all internal uses, where segment boundaries are word-aligned).
        """
        if self.bit_width != other.bit_width:
            raise ValueError("bit widths differ")
        if self.n_cols != other.n_cols:
            raise ValueError("column counts differ")
        if self.n_rows % self.bit_width != 0 and other.n_word_rows > 0:
            raise ValueError(
                "cannot stack below a partially-filled trailing word"
            )
        words = np.vstack([self.words, other.words])
        return BitMatrix(words, self.n_rows + other.n_rows, self.bit_width)
