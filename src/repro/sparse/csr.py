"""Compressed sparse row matrices.

CSR is the compute format for uncompressed sparse kernels: the row-outer
Gram product (:func:`repro.sparse.spgemm.gram_csr_outer`) walks rows of
``A`` directly, which is the natural access pattern for ``A^T A`` — each
nonzero row ``k`` contributes the outer product of its column set with
itself.  As in COO, boolean matrices carry ``data=None``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CsrMatrix:
    """CSR with 64-bit indices; ``data=None`` encodes an all-ones matrix."""

    indptr: np.ndarray
    indices: np.ndarray
    shape: tuple[int, int]
    data: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        n_rows, n_cols = self.shape
        if self.indptr.ndim != 1 or self.indptr.size != n_rows + 1:
            raise ValueError(
                f"indptr must have length n_rows+1={n_rows + 1}, "
                f"got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n_cols
        ):
            raise ValueError("column index out of bounds")
        if self.data is not None:
            self.data = np.asarray(self.data)
            if self.data.shape != self.indices.shape:
                raise ValueError("data must align with indices")

    # ---- properties --------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def is_boolean(self) -> bool:
        return self.data is None

    @property
    def nbytes(self) -> int:
        base = self.indptr.nbytes + self.indices.nbytes
        return base + (self.data.nbytes if self.data is not None else 0)

    def row_degrees(self) -> np.ndarray:
        """Nonzeros per row."""
        return np.diff(self.indptr)

    def row(self, i: int) -> np.ndarray:
        """Column indices of row ``i``."""
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range {self.shape[0]}")
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def nonzero_rows(self) -> np.ndarray:
        """Indices of rows with at least one stored entry."""
        return np.flatnonzero(np.diff(self.indptr) > 0)

    def column_sums(self) -> np.ndarray:
        """Per-column sums — the ``a-hat`` vector of §III-A when boolean."""
        out = np.zeros(self.shape[1], dtype=np.int64)
        if self.is_boolean:
            np.add.at(out, self.indices, 1)
        else:
            np.add.at(out, self.indices, self.data.astype(np.int64))
        return out

    # ---- transforms ----------------------------------------------------------

    def to_dense(self, dtype=None) -> np.ndarray:
        if dtype is None:
            dtype = bool if self.is_boolean else self.data.dtype
        out = np.zeros(self.shape, dtype=dtype)
        row_ids = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        if self.is_boolean:
            out[row_ids, self.indices] = True if dtype == bool else 1
        else:
            out[row_ids, self.indices] = self.data.astype(dtype)
        return out

    def to_coo(self) -> "CooMatrix":
        from repro.sparse.coo import CooMatrix

        row_ids = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        return CooMatrix(row_ids, self.indices.copy(), self.shape,
                         None if self.is_boolean else self.data.copy())

    def select_rows(self, row_ids: np.ndarray) -> "CsrMatrix":
        """A new CSR containing only ``row_ids``, in the given order."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        counts = self.indptr[row_ids + 1] - self.indptr[row_ids]
        indptr = np.zeros(row_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if self.nnz:
            gather = np.concatenate(
                [
                    np.arange(self.indptr[r], self.indptr[r + 1])
                    for r in row_ids
                ]
            ) if row_ids.size else np.empty(0, dtype=np.int64)
        else:
            gather = np.empty(0, dtype=np.int64)
        indices = self.indices[gather]
        data = self.data[gather] if self.data is not None else None
        return CsrMatrix(indptr, indices, (row_ids.size, self.shape[1]), data)
