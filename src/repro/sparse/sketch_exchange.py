"""Distributed all-pairs Jaccard estimation from gathered sketches.

The exact pipeline ships packed indicator *tiles*; this module ships
*sketches* — a lossy, error-bounded representation whose wire size is
independent of ``m`` (attribute universe) and linear in ``n`` (samples).
The exchange pattern is deliberately simple and communication-minimal:

1. every rank builds sketches for the samples it owns (cyclic
   assignment ``j % p == r``, matching the reader layout of
   :mod:`repro.core.indicator`), streamed batch by batch;
2. per-rank sketch payloads are **gathered** to the root through
   :meth:`~repro.runtime.comm.Communicator.gatherv`, riding the PR-3
   wire codecs — packed b-bit words and HLL registers travel as RLE/raw
   frames, sorted bottom-k hash payloads delta+varint-encode — so the
   :class:`~repro.runtime.cost.CostLedger` charges real encoded bytes;
3. a global-statistics **allreduce** (total values hashed, payload
   bytes) gives every rank the run's sketch totals;
4. the root estimates all pairs vectorized and derives the similarity
   matrix with the analytic error bound attached.

Payload families (wire layout in ``docs/sketches.md``):

=============  =====================================================
estimator      per-rank payload arrays
=============  =====================================================
minhash        ``sizes`` int64, ``lengths`` int64, ``hashes`` uint64
bbit_minhash   ``sizes`` int64, ``words`` uint64 2-D (b-bit packed)
hll            ``sizes`` int64, ``registers`` uint8 2-D
=============  =====================================================

``sizes`` carries the exact per-sample distinct-value counts: 8 bytes a
sample buys exact empty-set handling and the HLL inclusion–exclusion
denominator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sketch import (
    SKETCH_ESTIMATORS,
    hll_cardinality,
    hll_precision_for,
    make_sketch,
    unpack_lanes,
)
from repro.runtime.codec import WireCodec
from repro.runtime.comm import Communicator
from repro.sparse.coo import CooMatrix


def owned_samples(n: int, rank: int, n_ranks: int) -> np.ndarray:
    """Global sample ids owned by ``rank`` (cyclic reader assignment)."""
    return np.arange(rank, n, n_ranks, dtype=np.int64)


@dataclass
class SketchFamily:
    """Per-rank sketch state for the samples one rank owns."""

    estimator: str
    sample_ids: np.ndarray
    size: int
    bits: int
    seed: int

    def __post_init__(self) -> None:
        if self.estimator not in SKETCH_ESTIMATORS:
            raise ValueError(
                f"estimator must be one of {SKETCH_ESTIMATORS}, "
                f"got {self.estimator!r}"
            )
        self.sketches = [
            make_sketch(self.estimator, self.size, self.bits, self.seed)
            for _ in range(self.sample_ids.size)
        ]
        self._local_of = {
            int(j): i for i, j in enumerate(self.sample_ids)
        }

    @property
    def n_local(self) -> int:
        return self.sample_ids.size

    def update_from_coo(self, chunk: CooMatrix, row_offset: int) -> None:
        """Fold one batch's coordinates into the owned sketches.

        ``chunk`` holds batch-local rows and *global* sample columns, as
        produced by :meth:`IndicatorSource.read_batch`; ``row_offset``
        is the batch's global row base ``lo``.
        """
        if chunk.nnz == 0:
            return
        order = np.argsort(chunk.cols, kind="stable")
        cols = chunk.cols[order]
        values = chunk.rows[order] + row_offset
        starts = np.flatnonzero(np.r_[True, cols[1:] != cols[:-1]])
        bounds = np.r_[starts, cols.size]
        for a, b in zip(bounds[:-1], bounds[1:]):
            local = self._local_of.get(int(cols[a]))
            if local is None:
                raise ValueError(
                    f"sample {int(cols[a])} not owned by this rank"
                )
            self.sketches[local].update(np.sort(values[a:b]))

    def update_flops(self, nnz: int) -> float:
        """Modelled sketch-update cost of folding ``nnz`` coordinates."""
        if self.estimator == "bbit_minhash":
            return float(nnz) * self.size  # one lane mix per (value, lane)
        if self.estimator == "minhash":
            # Hash + merge into the bottom-s buffer.
            return float(nnz) * (1.0 + np.log2(max(self.size, 2)))
        return 3.0 * nnz  # hll: hash, index split, register max

    def sizes(self) -> np.ndarray:
        """Exact distinct-value counts of the owned samples."""
        return np.array(
            [sk.n_values for sk in self.sketches], dtype=np.int64
        )

    def payloads(self) -> dict[str, np.ndarray]:
        """The wire arrays this rank contributes to the gather."""
        out = {"sizes": self.sizes()}
        if self.estimator == "minhash":
            hashes = [sk.hashes for sk in self.sketches]
            out["lengths"] = np.array(
                [h.size for h in hashes], dtype=np.int64
            )
            out["hashes"] = (
                np.concatenate(hashes)
                if hashes
                else np.empty(0, dtype=np.uint64)
            )
        elif self.estimator == "bbit_minhash":
            out["words"] = (
                np.stack([sk.packed() for sk in self.sketches])
                if self.sketches
                else np.empty((0, 0), dtype=np.uint64)
            )
        else:
            out["registers"] = (
                np.stack([sk.registers for sk in self.sketches])
                if self.sketches
                else np.empty((0, 0), dtype=np.uint8)
            )
        return out

    def payload_nbytes(self) -> int:
        return int(sum(v.nbytes for v in self.payloads().values()))

    def error_bound(self) -> float:
        return make_sketch(
            self.estimator, self.size, self.bits, self.seed
        ).error_bound()


# ---- root-side estimation -------------------------------------------------


def _fill_symmetric(n: int, fill) -> np.ndarray:
    """Build a symmetric unit-diagonal matrix from a row callback.

    ``fill(i)`` returns the estimates for pairs ``(i, j > i)``.
    """
    sim = np.eye(n, dtype=np.float64)
    for i in range(n - 1):
        row = fill(i)
        sim[i, i + 1 :] = row
        sim[i + 1 :, i] = row
    return sim


def _apply_empty_rules(
    sim: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Exact J for pairs involving empty sets (0, or 1 for both empty)."""
    empty = sizes == 0
    if not empty.any():
        return sim
    sim[empty, :] = 0.0
    sim[:, empty] = 0.0
    both = np.outer(empty, empty)
    sim[both] = 1.0
    np.fill_diagonal(sim, 1.0)
    return sim


def estimate_minhash_pairs(
    sketch_hashes: list[np.ndarray], sizes: np.ndarray, size: int
) -> np.ndarray:
    """All-pairs Mash estimates from bottom-``s`` hash arrays."""
    n = len(sketch_hashes)

    def fill(i: int) -> np.ndarray:
        a = sketch_hashes[i]
        out = np.empty(n - i - 1, dtype=np.float64)
        for off, j in enumerate(range(i + 1, n)):
            b = sketch_hashes[j]
            if a.size == 0 and b.size == 0:
                out[off] = 1.0
                continue
            union = np.union1d(a, b)[:size]
            if union.size == 0:
                out[off] = 1.0
                continue
            both = (
                np.isin(union, a, assume_unique=True)
                & np.isin(union, b, assume_unique=True)
            ).sum()
            out[off] = both / union.size
        return out

    return _apply_empty_rules(_fill_symmetric(n, fill), sizes)


def estimate_bbit_pairs(
    fingerprints: np.ndarray, sizes: np.ndarray, bits: int
) -> np.ndarray:
    """All-pairs collision-corrected estimates from lane fingerprints."""
    n = fingerprints.shape[0]
    c = 2.0 ** -bits

    def fill(i: int) -> np.ndarray:
        matches = (
            (fingerprints[i + 1 :] == fingerprints[i]).mean(axis=1)
        )
        return np.clip((matches - c) / (1.0 - c), 0.0, 1.0)

    return _apply_empty_rules(_fill_symmetric(n, fill), sizes)


def estimate_hll_pairs(
    registers: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """All-pairs inclusion–exclusion estimates from HLL registers."""
    n = registers.shape[0]
    szs = sizes.astype(np.float64)

    def fill(i: int) -> np.ndarray:
        union_regs = np.maximum(registers[i + 1 :], registers[i])
        unions = np.maximum(hll_cardinality(union_regs), 1e-12)
        inter = szs[i] + szs[i + 1 :] - unions
        return np.clip(inter / unions, 0.0, 1.0)

    return _apply_empty_rules(_fill_symmetric(n, fill), sizes)


def estimate_flops(estimator: str, n: int, size: int) -> float:
    """Modelled root-side cost of the all-pairs estimation."""
    pairs = n * (n - 1) / 2.0
    per_pair = {"minhash": 4.0, "bbit_minhash": 1.0, "hll": 3.0}[estimator]
    return pairs * per_pair * size


# ---- the distributed exchange ---------------------------------------------


@dataclass
class ExchangeOutcome:
    """What the sketch exchange hands back to the driver."""

    #: Estimated all-pairs similarity (root's copy; symmetric, unit
    #: diagonal, clipped to [0, 1]).
    similarity: np.ndarray
    #: Exact per-sample distinct-value counts (the gathered ``sizes``).
    sample_sizes: np.ndarray
    #: Uniform worst-case 95% additive bound of the estimator config.
    error_bound: float
    #: Raw (pre-codec) bytes of all gathered sketch payloads.
    sketch_payload_bytes: int
    #: Total distinct values hashed across all ranks.
    total_values: int


def _maybe(arr: np.ndarray) -> np.ndarray | None:
    """Empty arrays travel as ``None`` so the codec path stays engaged."""
    return arr if arr.size else None


def _gather_arrays(
    comm: Communicator,
    per_rank: list[np.ndarray],
    codec: WireCodec | None,
) -> list[np.ndarray] | None:
    """Gather one payload array per rank to root 0, codec-mediated."""
    gathered = comm.gatherv(
        [_maybe(a) for a in per_rank], root=0, codec=codec
    )[0]
    if gathered is None:
        return None
    return [
        g if g is not None else np.empty(0, dtype=a.dtype)
        for g, a in zip(gathered, per_rank)
    ]


def exchange_and_estimate(
    comm: Communicator,
    families: list[SketchFamily],
    n: int,
    codec: WireCodec | None = None,
) -> ExchangeOutcome:
    """Gather every rank's sketches to root 0 and estimate all pairs.

    ``families[r]`` is rank ``r``'s :class:`SketchFamily`; all must
    share one estimator configuration.  Communication is charged to the
    communicator's ledger (codec-encoded when ``codec`` is given); the
    estimation compute is charged to the root rank under the
    ``sketch:estimate`` kernel label.
    """
    if len(families) != comm.size:
        raise ValueError(
            f"need one family per rank ({comm.size}), got {len(families)}"
        )
    fam = families[0]
    for other in families[1:]:
        if (
            other.estimator != fam.estimator
            or other.size != fam.size
            or other.bits != fam.bits
            or other.seed != fam.seed
        ):
            raise ValueError(
                f"families disagree on the sketch configuration: "
                f"({fam.estimator}, {fam.size}, {fam.bits}, {fam.seed}) "
                f"vs ({other.estimator}, {other.size}, {other.bits}, "
                f"{other.seed})"
            )
    payloads = [f.payloads() for f in families]
    gathered: dict[str, list[np.ndarray]] = {}
    for key in payloads[0]:
        gathered[key] = _gather_arrays(
            comm, [p[key] for p in payloads], codec
        )

    # Global totals every rank learns (allreduce): values hashed and
    # payload bytes contributed.
    totals = comm.allreduce(
        [
            np.array(
                [
                    int(p["sizes"].sum()),
                    sum(v.nbytes for v in p.values()),
                ],
                dtype=np.int64,
            )
            for p in payloads
        ],
        op="sum",
        codec=codec,
    )[0]

    # Root-side reassembly into global sample order.
    sizes = np.zeros(n, dtype=np.int64)
    for r, f in enumerate(families):
        sizes[f.sample_ids] = gathered["sizes"][r]

    if fam.estimator == "minhash":
        sketch_hashes: list[np.ndarray] = [None] * n  # type: ignore
        for r, f in enumerate(families):
            lengths = gathered["lengths"][r]
            values = gathered["hashes"][r]
            bounds = np.r_[0, np.cumsum(lengths)]
            for i, j in enumerate(f.sample_ids):
                sketch_hashes[int(j)] = values[bounds[i] : bounds[i + 1]]
        sim = estimate_minhash_pairs(sketch_hashes, sizes, fam.size)
    elif fam.estimator == "bbit_minhash":
        fingerprints = np.zeros((n, fam.size), dtype=np.uint64)
        for r, f in enumerate(families):
            words = gathered["words"][r]
            for i, j in enumerate(f.sample_ids):
                fingerprints[int(j)] = unpack_lanes(
                    words[i], fam.bits, fam.size
                )
        sim = estimate_bbit_pairs(fingerprints, sizes, fam.bits)
    else:
        n_regs = 1 << hll_precision_for(fam.size)
        registers = np.zeros((n, n_regs), dtype=np.uint8)
        for r, f in enumerate(families):
            regs = gathered["registers"][r]
            if regs.size:
                registers[f.sample_ids] = regs
        sim = estimate_hll_pairs(registers, sizes)

    comm.sub([0]).charge_compute(
        estimate_flops(fam.estimator, n, fam.size),
        kernel="sketch:estimate",
    )
    return ExchangeOutcome(
        similarity=sim,
        sample_sizes=sizes,
        error_bound=fam.error_bound(),
        sketch_payload_bytes=int(totals[1]),
        total_values=int(totals[0]),
    )
