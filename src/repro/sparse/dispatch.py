"""Density-adaptive dispatch between the local Gram kernels.

The paper's central efficiency claim rests on running the *right* local
Gram kernel for the input's density regime: the Eq. 7 popcount sweep on
bit-packed segments when the post-filter batch is dense, and hypersparse
outer-product accumulation when most sample pairs share nothing
(Özkural & Aykanat's all-pairs analysis makes the same regime split for
1-D vs 2-D algorithms).  This module makes that choice explicit and
automatic:

* :func:`predict_kernel_ops` — modelled effective-operation counts for
  every kernel, given the post-filter batch shape and nonzero count;
* :func:`choose_kernel` — the per-batch decision (or a forced policy),
  returned as a :class:`DispatchDecision` so drivers can surface it in
  :class:`~repro.core.result.BatchStats`;
* :data:`GRAM_KERNELS` / :func:`resolve_kernel` — the dispatch table
  mapping kernel names to the pairwise implementations the SUMMA layer
  calls per block.

Cost model
----------
With ``h`` surviving rows, ``n`` samples, ``z`` nonzeros, and word width
``b`` (so ``w = ceil(h / b)`` word rows and ``pairs = n (n + 1) / 2``
symmetric column pairs):

====================  =====================================================
kernel                modelled effective ops
====================  =====================================================
``bitpacked``         ``min(2 w * pairs, gustavson)`` — the two-pass sweep
                      (materialize the AND temporary, then popcount-reduce
                      it), except that :func:`gram_bitpacked` charges the
                      Gustavson input-sparse cost when cheaper, so the
                      prediction takes the same min (estimated from the
                      expected nonzero-word counts per word row)
``blocked``           ``w * pairs`` — single fused AND+popcount+accumulate
                      pass over cache-resident word tiles
``outer``             ``OUTER_OP_WEIGHT * z * (z / h)`` — one scatter-add
                      per index pair; scatter ops are weighted because a
                      random-access update costs several SIMD word ops
====================  =====================================================

The blocked/outer crossover therefore sits at post-filter density
``d* = sqrt(1 / (2 * OUTER_OP_WEIGHT * b))`` (about 0.03 for ``b = 64``):
BIGSI-like batches (``d`` near ``1/n``) go to the outer kernel, dense
Kingsford-like batches to the blocked popcount path.  Exact ties break
toward the popcount path, whose runtime is shape-predictable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sparse.spgemm import (
    gram_bitpacked,
    gram_outer_pair,
    gram_popcount_blocked,
)

#: Kernel-policy names accepted by the driver config: ``"adaptive"``
#: chooses per batch; the rest force one kernel everywhere.
KERNEL_POLICIES = ("adaptive", "bitpacked", "blocked", "outer")

#: Kernel names the dispatcher can route to.
KERNEL_NAMES = ("bitpacked", "blocked", "outer")

#: Modelled cost of one scatter-add index pair, in units of one packed
#: word operation.  A random-access read-modify-write costs several
#: vectorized word ops on any cache hierarchy; 8 is a deliberately
#: conservative calibration so the dispatcher only leaves the popcount
#: path when the outer kernel wins by a wide margin.
OUTER_OP_WEIGHT = 8.0

#: Pairwise Gram implementations, keyed by kernel name.  All share the
#: ``(x, y=None, block_bytes=...)`` calling convention on
#: :class:`~repro.sparse.bitmatrix.BitMatrix` operands.
GRAM_KERNELS = {
    "bitpacked": gram_bitpacked,
    "blocked": gram_popcount_blocked,
    "outer": gram_outer_pair,
}


@dataclass(frozen=True)
class DispatchDecision:
    """One routing decision, with the evidence it was based on.

    ``density`` is the post-filter effective density ``z / (h n)`` the
    decision saw (0.0 for degenerate batches); ``predicted_ops`` holds
    the modelled effective-operation count of every candidate kernel so
    benchmarks and tests can audit the choice.
    """

    kernel: str
    policy: str
    density: float
    predicted_ops: dict[str, float] = field(default_factory=dict)

    @property
    def forced(self) -> bool:
        """True when a fixed policy overrode the adaptive choice."""
        return self.policy != "adaptive"


def resolve_kernel(name: str):
    """Look up a pairwise Gram kernel by name."""
    try:
        return GRAM_KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown gram kernel {name!r}; expected one of {KERNEL_NAMES}"
        ) from None


def predict_kernel_ops(
    n_rows: int, n_cols: int, nnz: float, bit_width: int
) -> dict[str, float]:
    """Modelled effective ops of each kernel for one post-filter batch.

    ``n_rows`` is the number of surviving (nonzero) rows, ``n_cols`` the
    sample count, ``nnz`` the batch nonzeros.  Degenerate batches cost
    zero everywhere.
    """
    if n_rows <= 0 or n_cols <= 0 or nnz <= 0:
        return {name: 0.0 for name in KERNEL_NAMES}
    w = float(-(-n_rows // bit_width))
    pairs = n_cols * (n_cols + 1) / 2.0
    avg_degree = float(nnz) / n_rows
    # gram_bitpacked charges min(dense sweep, Gustavson input-sparse
    # kernel); mirror that min here so predicted_ops matches what the
    # ledger will actually see.  Expected nonzero words per word row:
    # a word covers `bit_width` rows of one column, so it is nonzero
    # with probability 1 - (1 - d)^b under the uniform model.
    density = min(float(nnz) / (float(n_rows) * n_cols), 1.0)
    p_word = -math.expm1(bit_width * math.log1p(-density)) \
        if density < 1.0 else 1.0
    cx = n_cols * p_word
    gustavson = w * cx * (cx + 1.0)
    return {
        "bitpacked": min(2.0 * w * pairs, gustavson),
        "blocked": w * pairs,
        "outer": OUTER_OP_WEIGHT * float(nnz) * avg_degree,
    }


def choose_kernel(
    n_rows: int,
    n_cols: int,
    nnz: float,
    bit_width: int,
    policy: str = "adaptive",
) -> DispatchDecision:
    """Pick the Gram kernel for one batch (or honour a forced policy).

    ``n_rows`` is the surviving row count after zero-row filtering;
    ``nnz`` is unchanged by the filter.  Degenerate batches (empty, or
    all rows filtered away) route to the blocked popcount path, which
    no-ops on zero word rows.  Exact cost ties break toward ``blocked``.
    """
    if policy not in KERNEL_POLICIES:
        raise ValueError(
            f"policy must be one of {KERNEL_POLICIES}, got {policy!r}"
        )
    density = (
        float(nnz) / (float(n_rows) * n_cols) if n_rows > 0 and n_cols > 0
        else 0.0
    )
    ops = predict_kernel_ops(n_rows, n_cols, nnz, bit_width)
    if policy != "adaptive":
        return DispatchDecision(
            kernel=policy, policy=policy, density=density, predicted_ops=ops
        )
    if n_rows <= 0 or n_cols <= 0 or nnz <= 0:
        kernel = "blocked"
    else:
        kernel = "blocked" if ops["blocked"] <= ops["outer"] else "outer"
    return DispatchDecision(
        kernel=kernel, policy=policy, density=density, predicted_ops=ops
    )
