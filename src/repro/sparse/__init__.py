"""Sparse / bit-packed matrix substrate (the Cyclops-CTF substitute).

The paper's implementation uses Cyclops for (a) distributed sparse vector
writes with algebraic accumulation, (b) semiring sparse-matrix products
with dense output (the popcount kernel of Eq. 7), and (c) processor-grid
data distribution.  This package re-implements that subset:

* :mod:`~repro.sparse.semiring` — monoid/semiring abstraction, including
  the ``(max, x)`` structure used for the filter vector and the
  popcount-AND structure used for the compressed product;
* :mod:`~repro.sparse.coo`, :mod:`~repro.sparse.csr` — minimal boolean /
  integer sparse formats tailored to hypersparse indicator matrices;
* :mod:`~repro.sparse.bitmatrix` — the b-bit packed column-block format
  of §III-B technique (3);
* :mod:`~repro.sparse.spgemm` — local Gram kernels ``B = A^T A``
  (dense-word popcount sweeps, the word-tiled blocked fast path, and
  hypersparse row-outer-product variants);
* :mod:`~repro.sparse.dispatch` — density-adaptive routing between the
  local kernels, driven by post-filter batch statistics;
* :mod:`~repro.sparse.distributed` — block-distributed matrices over
  processor grids, with redistribution;
* :mod:`~repro.sparse.summa` — communication-avoiding distributed Gram:
  2-D SUMMA and the 2.5D replicated variant of §III-C;
* :mod:`~repro.sparse.sketch_exchange` — distributed all-pairs Jaccard
  *estimation* from gathered per-sample sketches (MinHash / b-bit /
  HLL; see :mod:`repro.core.sketch`), the lossy counterpart to the
  exact SUMMA path.
"""

from repro.sparse.bitmatrix import BitMatrix
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.dispatch import (
    GRAM_KERNELS,
    KERNEL_POLICIES,
    DispatchDecision,
    choose_kernel,
    predict_kernel_ops,
    resolve_kernel,
)
from repro.sparse.semiring import (
    ARITHMETIC,
    BOOLEAN,
    MAX_TIMES,
    POPCOUNT_AND,
    Semiring,
)
from repro.sparse.sketch_exchange import (
    ExchangeOutcome,
    SketchFamily,
    exchange_and_estimate,
    owned_samples,
)
from repro.sparse.spgemm import (
    colsum_bitpacked,
    colsum_csr,
    gram_bitpacked,
    gram_csr_outer,
    gram_outer_pair,
    gram_popcount_blocked,
)

__all__ = [
    "BitMatrix",
    "CooMatrix",
    "CsrMatrix",
    "Semiring",
    "ARITHMETIC",
    "BOOLEAN",
    "MAX_TIMES",
    "POPCOUNT_AND",
    "DispatchDecision",
    "GRAM_KERNELS",
    "KERNEL_POLICIES",
    "choose_kernel",
    "predict_kernel_ops",
    "resolve_kernel",
    "gram_bitpacked",
    "gram_csr_outer",
    "gram_outer_pair",
    "gram_popcount_blocked",
    "colsum_bitpacked",
    "colsum_csr",
    "ExchangeOutcome",
    "SketchFamily",
    "exchange_and_estimate",
    "owned_samples",
]
