"""Coordinate-format sparse matrices.

COO is the construction format of the pipeline: ranks read ``(value,
sample)`` pairs from input files and accumulate them as ``(row, col)``
coordinates; filtering, compaction and redistribution all operate on raw
coordinate arrays before the batch is frozen into CSR or a packed
:class:`~repro.sparse.bitmatrix.BitMatrix`.

Boolean matrices (the indicator ``A``) carry ``data=None`` — every stored
coordinate is an implicit 1 — halving memory relative to storing an
explicit value per nonzero, which matters for hypersparse inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CooMatrix:
    """A sparse matrix as parallel ``(rows, cols[, data])`` arrays."""

    rows: np.ndarray
    cols: np.ndarray
    shape: tuple[int, int]
    data: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        if self.rows.shape != self.cols.shape or self.rows.ndim != 1:
            raise ValueError(
                f"rows/cols must be equal-length 1-D arrays, got "
                f"{self.rows.shape} and {self.cols.shape}"
            )
        if self.data is not None:
            self.data = np.asarray(self.data)
            if self.data.shape != self.rows.shape:
                raise ValueError(
                    f"data shape {self.data.shape} does not match "
                    f"{self.rows.shape} coordinates"
                )
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"shape must be non-negative, got {self.shape}")
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= n_rows:
                raise ValueError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= n_cols:
                raise ValueError("column index out of bounds")

    # ---- constructors ----------------------------------------------------

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CooMatrix":
        z = np.empty(0, dtype=np.int64)
        return cls(rows=z, cols=z.copy(), shape=shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CooMatrix":
        arr = np.asarray(dense)
        rows, cols = np.nonzero(arr)
        is_bool = arr.dtype == bool or np.array_equal(
            arr[rows, cols], np.ones(len(rows), dtype=arr.dtype)
        )
        data = None if is_bool else arr[rows, cols]
        return cls(rows=rows.astype(np.int64), cols=cols.astype(np.int64),
                   shape=arr.shape, data=data)

    @classmethod
    def from_sets(cls, sets, m: int) -> "CooMatrix":
        """Indicator matrix ``A`` from data samples (paper §III-A).

        ``sets[j]`` holds the attribute values of sample ``X_j``; value
        ``i`` present in sample ``j`` sets ``a_ij = 1``.
        """
        rows_parts = []
        cols_parts = []
        for j, s in enumerate(sets):
            vals = np.asarray(sorted(s), dtype=np.int64)
            if vals.size and (vals.min() < 0 or vals.max() >= m):
                raise ValueError(
                    f"sample {j} has values outside [0, {m}): "
                    f"[{vals.min()}, {vals.max()}]"
                )
            rows_parts.append(vals)
            cols_parts.append(np.full(vals.size, j, dtype=np.int64))
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
        return cls(rows=rows, cols=cols, shape=(m, len(sets)))

    # ---- properties -------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.rows.size)

    @property
    def is_boolean(self) -> bool:
        return self.data is None

    @property
    def nbytes(self) -> int:
        base = self.rows.nbytes + self.cols.nbytes
        return base + (self.data.nbytes if self.data is not None else 0)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    # ---- transforms ---------------------------------------------------------

    def deduplicate(self) -> "CooMatrix":
        """Collapse duplicate coordinates (boolean OR / arithmetic sum)."""
        if self.nnz == 0:
            return self
        keys = self.rows * self.shape[1] + self.cols
        if self.is_boolean:
            uniq, idx = np.unique(keys, return_index=True)
            del uniq
            idx.sort()
            return CooMatrix(self.rows[idx], self.cols[idx], self.shape)
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        data_sorted = self.data[order]
        boundaries = np.flatnonzero(np.diff(keys_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        sums = np.add.reduceat(data_sorted, starts)
        first = order[starts]
        return CooMatrix(self.rows[first], self.cols[first], self.shape, sums)

    def transpose(self) -> "CooMatrix":
        return CooMatrix(
            rows=self.cols.copy(), cols=self.rows.copy(),
            shape=(self.shape[1], self.shape[0]), data=self.data,
        )

    def row_slice(self, lo: int, hi: int) -> "CooMatrix":
        """Rows in ``[lo, hi)``, re-indexed to start at 0 (batching, Eq. 3)."""
        if not 0 <= lo <= hi <= self.shape[0]:
            raise IndexError(f"slice [{lo},{hi}) out of range {self.shape[0]}")
        sel = (self.rows >= lo) & (self.rows < hi)
        data = self.data[sel] if self.data is not None else None
        return CooMatrix(self.rows[sel] - lo, self.cols[sel],
                         (hi - lo, self.shape[1]), data)

    def col_slice(self, lo: int, hi: int) -> "CooMatrix":
        if not 0 <= lo <= hi <= self.shape[1]:
            raise IndexError(f"slice [{lo},{hi}) out of range {self.shape[1]}")
        sel = (self.cols >= lo) & (self.cols < hi)
        data = self.data[sel] if self.data is not None else None
        return CooMatrix(self.rows[sel], self.cols[sel] - lo,
                         (self.shape[0], hi - lo), data)

    def remap_rows(self, mapping: np.ndarray, new_n_rows: int) -> "CooMatrix":
        """Apply a row re-indexing (the filter compaction of Eq. 6)."""
        new_rows = np.asarray(mapping)[self.rows]
        if new_rows.size and (new_rows.min() < 0 or new_rows.max() >= new_n_rows):
            raise ValueError("row mapping produced out-of-range indices")
        return CooMatrix(new_rows.astype(np.int64), self.cols.copy(),
                         (new_n_rows, self.shape[1]), self.data)

    def to_dense(self, dtype=None) -> np.ndarray:
        if dtype is None:
            dtype = bool if self.is_boolean else self.data.dtype
        out = np.zeros(self.shape, dtype=dtype)
        if self.is_boolean:
            out[self.rows, self.cols] = True if dtype == bool else 1
        else:
            np.add.at(out, (self.rows, self.cols), self.data.astype(dtype))
        return out

    def to_csr(self) -> "CsrMatrix":
        from repro.sparse.csr import CsrMatrix

        dedup = self.deduplicate()
        order = np.lexsort((dedup.cols, dedup.rows))
        rows = dedup.rows[order]
        cols = dedup.cols[order]
        data = dedup.data[order] if dedup.data is not None else None
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CsrMatrix(indptr=indptr, indices=cols, shape=self.shape, data=data)

    def concatenate(self, other: "CooMatrix") -> "CooMatrix":
        """Union of coordinate lists (shapes must match)."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if self.is_boolean != other.is_boolean:
            raise ValueError("cannot concatenate boolean with weighted COO")
        data = (
            None
            if self.is_boolean
            else np.concatenate([self.data, other.data])
        )
        return CooMatrix(
            np.concatenate([self.rows, other.rows]),
            np.concatenate([self.cols, other.cols]),
            self.shape,
            data,
        )
