"""Algebraic structures for generalized matrix operations.

Cyclops lets the user attach monoids/semirings to tensors so that
contractions run over arbitrary ``(add, multiply)`` pairs; the paper uses

* the ``(max, x)`` semiring for the filter vector ``f`` (so that any
  rank writing a 1 leaves a 1 — §IV-A),
* a ``(+, popcount(and))`` kernel for the compressed Gram product
  (Eq. 7, the ``Jaccard_Kernel`` of §IV-B),
* plain arithmetic for column sums and the final elementwise division.

A :class:`Semiring` here bundles vectorized NumPy implementations of the
two operations together with identity elements and a flop estimate used
by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class Monoid:
    """A commutative, associative combine with identity."""

    name: str
    combine: Callable[[Any, Any], Any]
    identity: Any

    def reduce(self, values) -> Any:
        acc = self.identity
        for v in values:
            acc = self.combine(acc, v)
        return acc


@dataclass(frozen=True)
class Semiring:
    """A (add-monoid, multiply) pair with vectorized implementations.

    Attributes
    ----------
    add:
        The additive monoid (used for accumulation / reduction).
    multiply:
        Vectorized elementwise product of two operand arrays.
    multiply_flops_per_element:
        Modelled arithmetic cost of one ``multiply`` + one ``add`` —
        e.g. popcount-AND on a 64-bit word is charged as 2 word ops.
    """

    name: str
    add: Monoid
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    multiply_flops_per_element: float = 1.0

    def dot(self, x: np.ndarray, y: np.ndarray) -> Any:
        """Semiring inner product of two 1-D arrays."""
        if x.shape != y.shape:
            raise ValueError(f"shape mismatch in dot: {x.shape} vs {y.shape}")
        products = self.multiply(x, y)
        acc = self.add.identity
        for v in np.asarray(products).ravel():
            acc = self.add.combine(acc, v)
        return acc


def _popcount_and(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.bitwise_count(np.bitwise_and(x, y)).astype(np.int64)


SUM = Monoid("sum", lambda a, b: a + b, 0)
MAX = Monoid("max", lambda a, b: np.maximum(a, b), 0)
OR = Monoid("or", lambda a, b: np.logical_or(a, b), False)

#: Ordinary arithmetic (+, *) — column sums, unions, divisions.
ARITHMETIC = Semiring("arithmetic", SUM, lambda a, b: a * b, 1.0)

#: Boolean (or, and) — uncompressed indicator products.
BOOLEAN = Semiring("boolean", OR, lambda a, b: np.logical_and(a, b), 1.0)

#: (max, x) — the filter-vector write semiring of §IV-A: concurrent
#: writes of 1 from any number of ranks combine to 1.
MAX_TIMES = Semiring("max-times", MAX, lambda a, b: a * b, 1.0)

#: (+, popcount(and)) on packed words — the Eq. 7 Jaccard kernel.
POPCOUNT_AND = Semiring("popcount-and", SUM, _popcount_and, 2.0)

#: (+, min) over aligned abundance vectors — the weighted-Jaccard
#: numerator ``sum_v min(a_v, b_v)`` (multiset intersection mass).
SUM_MIN = Semiring("sum-min", SUM, lambda a, b: np.minimum(a, b), 1.0)

#: (+, max) over aligned abundance vectors — the weighted-Jaccard
#: denominator ``sum_v max(a_v, b_v)`` (multiset union mass).
SUM_MAX = Semiring("sum-max", SUM, lambda a, b: np.maximum(a, b), 1.0)

ALL_SEMIRINGS: dict[str, Semiring] = {
    s.name: s
    for s in (ARITHMETIC, BOOLEAN, MAX_TIMES, POPCOUNT_AND, SUM_MIN, SUM_MAX)
}
