"""Block-distributed matrices over processor grids.

The distributed Gram computation of §III-C places the compressed batch
``R`` (an ``h x n`` word matrix) on a square ``q x q`` face of the
processor grid: rank ``(s, t)`` owns word-row block ``s`` and column
block ``t``.  The output ``B`` (dense ``n x n``) lives on the same face,
rank ``(i, j)`` owning the ``(i, j)`` column-block pair.

Because the runtime is a functional simulator, a distributed matrix holds
*all* blocks (keyed by face coordinates) while every data movement that a
real run would perform is charged through the grid's communicators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.codec import WireCodec
from repro.runtime.topology import ProcessorGrid
from repro.sparse.bitmatrix import BitMatrix
from repro.sparse.coo import CooMatrix
from repro.util.partition import block_bounds


def word_aligned_row_bounds(
    n_rows_bits: int, parts: int, bit_width: int
) -> list[tuple[int, int]]:
    """Split a bit-row space into ``parts`` word-aligned [lo, hi) ranges.

    Alignment to ``bit_width`` keeps every word of the packed matrix
    wholly inside one block, so packing is a purely local operation.
    """
    total_words = -(-n_rows_bits // bit_width) if n_rows_bits else 0
    bounds = []
    for i in range(parts):
        wlo, whi = block_bounds(total_words, parts, i)
        lo = min(wlo * bit_width, n_rows_bits)
        hi = min(whi * bit_width, n_rows_bits)
        bounds.append((lo, hi))
    return bounds


@dataclass
class DistWordMatrix:
    """A bit-packed matrix distributed over one grid layer's face.

    ``blocks[(s, t)]`` is the :class:`BitMatrix` with bit rows
    ``row_bounds[s]`` and columns ``col_bounds[t]``.
    """

    grid: ProcessorGrid
    layer: int
    row_bounds: list[tuple[int, int]]
    col_bounds: list[tuple[int, int]]
    bit_width: int
    blocks: dict[tuple[int, int], BitMatrix] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return self.row_bounds[-1][1] if self.row_bounds else 0

    @property
    def n_cols(self) -> int:
        return self.col_bounds[-1][1] if self.col_bounds else 0

    @property
    def nnz(self) -> int:
        return sum(b.nnz for b in self.blocks.values())

    @property
    def nbytes_per_rank(self) -> dict[tuple[int, int], int]:
        return {k: b.nbytes for k, b in self.blocks.items()}

    def block(self, s: int, t: int) -> BitMatrix:
        return self.blocks[(s, t)]

    def to_local(self) -> np.ndarray:
        """Assemble the full boolean matrix (tests / tiny problems)."""
        out = np.zeros((self.n_rows, self.n_cols), dtype=bool)
        for (s, t), blk in self.blocks.items():
            rlo, rhi = self.row_bounds[s]
            clo, chi = self.col_bounds[t]
            out[rlo:rhi, clo:chi] = blk.to_dense()
        return out

    @classmethod
    def from_coo_chunks(
        cls,
        grid: ProcessorGrid,
        layer: int,
        chunks: list[CooMatrix],
        n_rows_bits: int,
        n_cols: int,
        bit_width: int = 64,
        codec: WireCodec | None = None,
    ) -> "DistWordMatrix":
        """Redistribute per-rank COO chunks into the 2-D block layout.

        ``chunks[r]`` holds the coordinates currently resident on the
        layer's local rank ``r`` (in *global* batch coordinates).  One
        all-to-all moves every nonzero to its owner block, then each owner
        packs its block locally — mirroring the paper's write of the
        masked entries into the distributed Cyclops matrix.  ``codec``
        routes the coordinate payloads through the wire-format codec
        (sorted index stacks are the delta+varint codec's home turf).
        """
        comm = grid.layer_comm(layer)
        q = grid.rows
        if len(chunks) != comm.size:
            raise ValueError(
                f"need one chunk per layer rank ({comm.size}), got {len(chunks)}"
            )
        row_bounds = word_aligned_row_bounds(n_rows_bits, q, bit_width)
        col_bounds = [block_bounds(n_cols, grid.cols, t) for t in range(grid.cols)]
        row_lo = np.array([lo for lo, _ in row_bounds], dtype=np.int64)
        col_lo = np.array([lo for lo, _ in col_bounds], dtype=np.int64)
        row_hi = np.array([hi for _, hi in row_bounds], dtype=np.int64)
        col_hi = np.array([hi for _, hi in col_bounds], dtype=np.int64)

        def destinations(coo: CooMatrix) -> np.ndarray:
            s = np.searchsorted(row_hi, coo.rows, side="right")
            t = np.searchsorted(col_hi, coo.cols, side="right")
            return s * grid.cols + t

        send: list[list[np.ndarray | None]] = []
        for coo in chunks:
            dests = destinations(coo)
            row: list[np.ndarray | None] = [None] * comm.size
            for d in np.unique(dests):
                sel = dests == d
                payload = np.stack([coo.rows[sel], coo.cols[sel]])
                row[int(d)] = payload
            send.append(row)
        received = comm.alltoallv(send, codec=codec)

        matrix = cls(
            grid=grid,
            layer=layer,
            row_bounds=row_bounds,
            col_bounds=col_bounds,
            bit_width=bit_width,
        )
        flops = []
        for local_rank in range(comm.size):
            s, t = divmod(local_rank, grid.cols)
            rlo, rhi = row_bounds[s]
            clo, chi = col_bounds[t]
            parts = [p for p in received[local_rank] if p is not None]
            if parts:
                coords = np.concatenate(parts, axis=1)
                rows = coords[0] - rlo
                cols = coords[1] - clo
            else:
                rows = np.empty(0, dtype=np.int64)
                cols = np.empty(0, dtype=np.int64)
            matrix.blocks[(s, t)] = BitMatrix.from_coo(
                rows, cols, rhi - rlo, chi - clo, bit_width
            )
            flops.append(float(rows.size))
        comm.charge_compute(flops)
        return matrix


@dataclass
class DistDenseMatrix:
    """A dense matrix distributed as ``q x q`` blocks on a grid face."""

    grid: ProcessorGrid
    layer: int
    row_bounds: list[tuple[int, int]]
    col_bounds: list[tuple[int, int]]
    blocks: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)

    @classmethod
    def zeros(
        cls,
        grid: ProcessorGrid,
        layer: int,
        n_rows: int,
        n_cols: int,
        dtype=np.int64,
    ) -> "DistDenseMatrix":
        row_bounds = [block_bounds(n_rows, grid.rows, i) for i in range(grid.rows)]
        col_bounds = [block_bounds(n_cols, grid.cols, j) for j in range(grid.cols)]
        blocks = {
            (i, j): np.zeros((rhi - rlo, chi - clo), dtype=dtype)
            for i, (rlo, rhi) in enumerate(row_bounds)
            for j, (clo, chi) in enumerate(col_bounds)
        }
        return cls(grid, layer, row_bounds, col_bounds, blocks)

    @property
    def shape(self) -> tuple[int, int]:
        n_rows = self.row_bounds[-1][1] if self.row_bounds else 0
        n_cols = self.col_bounds[-1][1] if self.col_bounds else 0
        return (n_rows, n_cols)

    def block(self, i: int, j: int) -> np.ndarray:
        return self.blocks[(i, j)]

    def to_local(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=next(iter(self.blocks.values())).dtype)
        for (i, j), blk in self.blocks.items():
            rlo, rhi = self.row_bounds[i]
            clo, chi = self.col_bounds[j]
            out[rlo:rhi, clo:chi] = blk
        return out

    def add_inplace(self, other: "DistDenseMatrix") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        for key, blk in other.blocks.items():
            self.blocks[key] += blk


@dataclass
class DistVector:
    """A vector block-distributed over the columns of a grid face.

    Part ``t`` covers ``col_bounds[t]``; it is logically replicated down
    each grid column (every rank in column ``t`` holds part ``t``), which
    is the layout the Jaccard driver needs for ``a-hat``.
    """

    grid: ProcessorGrid
    layer: int
    col_bounds: list[tuple[int, int]]
    parts: list[np.ndarray]

    @classmethod
    def zeros(
        cls, grid: ProcessorGrid, layer: int, n: int, dtype=np.int64
    ) -> "DistVector":
        col_bounds = [block_bounds(n, grid.cols, j) for j in range(grid.cols)]
        parts = [np.zeros(hi - lo, dtype=dtype) for lo, hi in col_bounds]
        return cls(grid, layer, col_bounds, parts)

    @property
    def n(self) -> int:
        return self.col_bounds[-1][1] if self.col_bounds else 0

    def to_local(self) -> np.ndarray:
        if not self.parts:
            return np.empty(0)
        return np.concatenate(self.parts)

    def add_inplace(self, other: "DistVector") -> None:
        if self.n != other.n:
            raise ValueError(f"length mismatch: {self.n} vs {other.n}")
        for mine, theirs in zip(self.parts, other.parts):
            mine += theirs
