"""Local Gram kernels: ``B = X^T Y`` over Jaccard-relevant semirings.

Two production kernels cover the two density regimes the paper evaluates:

* :func:`gram_bitpacked` — the Eq. 7 popcount kernel on bit-packed
  matrices.  Cost ``O(w * n_x * n_y)`` word operations where ``w`` is the
  number of word rows; the right choice once zero rows are filtered and
  segments packed (Kingsford-like and synthetic densities).
* :func:`gram_csr_outer` — hypersparse row-outer-product accumulation:
  every nonzero row ``k`` with column set ``c_k`` adds 1 to ``B[c_k x
  c_k]``; cost ``O(sum_k |c_k|^2)``, independent of ``n^2`` — the right
  choice for BIGSI-like inputs where most pairs of samples share nothing.

Both produce the same dense ``n x n`` int64 Gram matrix; tests assert
exact agreement with a dense boolean reference on random inputs.

Kernels return a :class:`KernelResult` carrying the value together with
the modelled operation count, which the distributed layer charges to the
machine ledger (functional result and cost model stay in lockstep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sparse.bitmatrix import BitMatrix
from repro.sparse.csr import CsrMatrix

#: Soft cap on the temporary expansion a blocked kernel may allocate.
DEFAULT_BLOCK_BYTES = 64 * 2**20


@dataclass(frozen=True)
class KernelResult:
    """A kernel's output plus its modelled cost."""

    value: Any
    flops: float
    working_set_bytes: float


def gram_dense_reference(dense: np.ndarray) -> np.ndarray:
    """Reference ``A^T A`` on a dense boolean matrix (tests/docs only)."""
    a = np.asarray(dense).astype(np.int64)
    return a.T @ a


def gram_bitpacked(
    x: BitMatrix,
    y: BitMatrix | None = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> KernelResult:
    """Popcount Gram ``B[i, j] = sum_w popcount(x[:, i] & y[:, j])``.

    Blocked over columns of ``x`` so the broadcast temporary stays within
    ``block_bytes``.  With ``y is None`` computes the symmetric ``x^T x``.
    """
    symmetric = y is None
    if y is None:
        y = x
    if x.bit_width != y.bit_width:
        raise ValueError(f"bit widths differ: {x.bit_width} vs {y.bit_width}")
    if x.n_word_rows != y.n_word_rows:
        raise ValueError(
            f"word-row counts differ: {x.n_word_rows} vs {y.n_word_rows}"
        )
    w = x.n_word_rows
    n_x, n_y = x.n_cols, y.n_cols
    out = np.zeros((n_x, n_y), dtype=np.int64)
    if w == 0 or n_x == 0 or n_y == 0:
        return KernelResult(out, 0.0, 0.0)
    itemsize = x.words.dtype.itemsize
    per_col = max(1, w * n_y * itemsize)
    block = int(max(1, min(n_x, block_bytes // per_col)))
    xw = x.words
    yw = y.words
    for lo in range(0, n_x, block):
        hi = min(lo + block, n_x)
        if symmetric:
            # Only columns >= lo can land in the upper triangle.
            anded = xw[:, lo:hi, None] & yw[:, None, lo:]
            counts = np.bitwise_count(anded).sum(axis=0, dtype=np.int64)
            out[lo:hi, lo:] = counts
        else:
            anded = xw[:, lo:hi, None] & yw[:, None, :]
            out[lo:hi, :] = np.bitwise_count(anded).sum(axis=0, dtype=np.int64)
    if symmetric:
        # Blocks covered all (i, j) with j >= block start; only j >= i is
        # valid, so keep the upper triangle and mirror it.
        out = np.triu(out)
        out = out + np.triu(out, k=1).T
    # Modelled cost: a tuned implementation (as in Cyclops) picks between
    # the dense word sweep — 2 word ops per (word-row, column pair) — and
    # a Gustavson-style input-sparse kernel that only touches word pairs
    # where both operands are nonzero: sum_k cx_k * cy_k over word rows.
    pair_count = (n_x * n_y) if not symmetric else (n_x * (n_x + 1)) // 2
    dense_flops = 2.0 * w * pair_count
    cx = (xw != 0).sum(axis=1, dtype=np.float64)
    if symmetric:
        sparse_flops = float((cx * (cx + 1.0)).sum())
    else:
        cy = (yw != 0).sum(axis=1, dtype=np.float64)
        sparse_flops = 2.0 * float((cx * cy).sum())
    flops = min(dense_flops, sparse_flops)
    working_set = float(x.nbytes + y.nbytes + out.nbytes)
    return KernelResult(out, flops, working_set)


def gram_csr_outer(
    a: CsrMatrix,
    block_pairs: int = DEFAULT_BLOCK_BYTES // 16,
) -> KernelResult:
    """Hypersparse Gram via row outer products.

    For every stored row ``k`` with column indices ``c_k``, accumulates
    ``B[c_k x c_k] += 1`` (boolean inputs; weighted CSR uses the product
    of the two stored values).  Rows are processed grouped by degree so
    the pair expansion vectorizes; chunks are bounded by ``block_pairs``
    index pairs at a time.
    """
    n = a.shape[1]
    out = np.zeros((n, n), dtype=np.int64)
    degrees = a.row_degrees()
    nz_rows = np.flatnonzero(degrees > 0)
    if nz_rows.size == 0:
        return KernelResult(out, 0.0, 0.0)
    flops = float(np.square(degrees[nz_rows], dtype=np.float64).sum())
    for d in np.unique(degrees[nz_rows]):
        rows_d = nz_rows[degrees[nz_rows] == d]
        rows_per_chunk = max(1, block_pairs // int(d * d))
        for lo in range(0, rows_d.size, rows_per_chunk):
            chunk = rows_d[lo : lo + rows_per_chunk]
            # Gather the column lists of this degree class: (R, d).
            gather = (
                a.indptr[chunk][:, None] + np.arange(d, dtype=np.int64)[None, :]
            )
            cols = a.indices[gather]
            left = np.broadcast_to(cols[:, :, None], (chunk.size, d, d))
            right = np.broadcast_to(cols[:, None, :], (chunk.size, d, d))
            if a.is_boolean:
                np.add.at(out, (left.ravel(), right.ravel()), 1)
            else:
                vals = a.data[gather]
                prod = (vals[:, :, None] * vals[:, None, :]).astype(np.int64)
                np.add.at(out, (left.ravel(), right.ravel()), prod.ravel())
    working_set = float(a.nbytes + out.nbytes)
    return KernelResult(out, flops, working_set)


def colsum_bitpacked(x: BitMatrix) -> KernelResult:
    """Column popcounts — one batch's contribution to ``a-hat`` (Eq. 4)."""
    sums = x.column_popcounts()
    return KernelResult(sums, float(x.words.size), float(x.nbytes))


def colsum_csr(a: CsrMatrix) -> KernelResult:
    """Column sums of a CSR matrix."""
    sums = a.column_sums()
    return KernelResult(sums, float(a.nnz), float(a.nbytes))


def choose_gram_kernel(nnz: int, n_rows: int, n_cols: int, bit_width: int) -> str:
    """Pick the cheaper Gram kernel for a local block.

    Compares the modelled op counts: packed-word sweep ``2 * ceil(rows/b)
    * n^2 / 2`` versus row-outer ``nnz * avg_degree`` (estimated with a
    uniform-degree assumption).  Returns ``"bitpacked"`` or ``"outer"``.
    """
    if n_rows <= 0 or n_cols <= 0 or nnz <= 0:
        return "bitpacked"
    w = -(-n_rows // bit_width)
    bitpacked_ops = float(w) * n_cols * (n_cols + 1)
    avg_degree = nnz / n_rows
    outer_ops = nnz * max(avg_degree, 1.0)
    return "bitpacked" if bitpacked_ops <= outer_ops else "outer"
