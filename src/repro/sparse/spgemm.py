"""Local Gram kernels: ``B = X^T Y`` over Jaccard-relevant semirings.

Four kernels cover the density regimes the paper evaluates:

* :func:`gram_bitpacked` — the Eq. 7 popcount kernel on bit-packed
  matrices.  Cost ``O(w * n_x * n_y)`` word operations where ``w`` is the
  number of word rows; the reference popcount path once zero rows are
  filtered and segments packed.
* :func:`gram_popcount_blocked` — the word-tiled popcount fast path for
  the dense regime (Kingsford-like densities): a single fused
  AND+popcount+accumulate sweep over cache-resident word tiles, using
  ``np.bitwise_count`` when available with a portable lookup-table
  fallback.  Same result as :func:`gram_bitpacked`, roughly half the
  modelled word operations (one pass instead of materialize-then-reduce).
* :func:`gram_csr_outer` — hypersparse row-outer-product accumulation:
  every nonzero row ``k`` with column set ``c_k`` adds 1 to ``B[c_k x
  c_k]``; cost ``O(sum_k |c_k|^2)``, independent of ``n^2`` — the right
  choice for BIGSI-like inputs where most pairs of samples share nothing.
* :func:`gram_outer_pair` — the pairwise (``X^T Y``) form of the outer
  kernel operating directly on bit-packed blocks, which is what the
  distributed SUMMA layer needs when the dispatcher routes a hypersparse
  batch away from the popcount sweeps.

All kernels produce the same dense int64 Gram matrix; tests assert exact
agreement with a dense boolean reference on random inputs.  The
density-adaptive choice between them lives in
:mod:`repro.sparse.dispatch`.

Kernels return a :class:`KernelResult` carrying the value together with
the modelled operation count, which the distributed layer charges to the
machine ledger (functional result and cost model stay in lockstep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sparse.bitmatrix import BitMatrix
from repro.sparse.csr import CsrMatrix
from repro.util.bits import popcount_elementwise

#: Soft cap on the temporary expansion a blocked kernel may allocate.
DEFAULT_BLOCK_BYTES = 64 * 2**20

#: Word rows per tile of the blocked popcount fast path; sized so one
#: tile's AND temporary stays within typical L2 capacities.
DEFAULT_WORD_TILE = 128


@dataclass(frozen=True)
class KernelResult:
    """A kernel's output plus its modelled cost."""

    value: Any
    flops: float
    working_set_bytes: float


def gram_dense_reference(dense: np.ndarray) -> np.ndarray:
    """Reference ``A^T A`` on a dense boolean matrix (tests/docs only)."""
    a = np.asarray(dense).astype(np.int64)
    return a.T @ a


def gram_bitpacked(
    x: BitMatrix,
    y: BitMatrix | None = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> KernelResult:
    """Popcount Gram ``B[i, j] = sum_w popcount(x[:, i] & y[:, j])``.

    Blocked over columns of ``x`` so the broadcast temporary stays within
    ``block_bytes``.  With ``y is None`` computes the symmetric ``x^T x``.
    """
    symmetric = y is None
    if y is None:
        y = x
    if x.bit_width != y.bit_width:
        raise ValueError(f"bit widths differ: {x.bit_width} vs {y.bit_width}")
    if x.n_word_rows != y.n_word_rows:
        raise ValueError(
            f"word-row counts differ: {x.n_word_rows} vs {y.n_word_rows}"
        )
    w = x.n_word_rows
    n_x, n_y = x.n_cols, y.n_cols
    out = np.zeros((n_x, n_y), dtype=np.int64)
    if w == 0 or n_x == 0 or n_y == 0:
        return KernelResult(out, 0.0, 0.0)
    itemsize = x.words.dtype.itemsize
    per_col = max(1, w * n_y * itemsize)
    block = int(max(1, min(n_x, block_bytes // per_col)))
    xw = x.words
    yw = y.words
    for lo in range(0, n_x, block):
        hi = min(lo + block, n_x)
        if symmetric:
            # Only columns >= lo can land in the upper triangle.
            anded = xw[:, lo:hi, None] & yw[:, None, lo:]
            counts = np.bitwise_count(anded).sum(axis=0, dtype=np.int64)
            out[lo:hi, lo:] = counts
        else:
            anded = xw[:, lo:hi, None] & yw[:, None, :]
            out[lo:hi, :] = np.bitwise_count(anded).sum(axis=0, dtype=np.int64)
    if symmetric:
        # Blocks covered all (i, j) with j >= block start; only j >= i is
        # valid, so keep the upper triangle and mirror it.
        out = np.triu(out)
        out = out + np.triu(out, k=1).T
    # Modelled cost: a tuned implementation (as in Cyclops) picks between
    # the dense word sweep — 2 word ops per (word-row, column pair) — and
    # a Gustavson-style input-sparse kernel that only touches word pairs
    # where both operands are nonzero: sum_k cx_k * cy_k over word rows.
    pair_count = (n_x * n_y) if not symmetric else (n_x * (n_x + 1)) // 2
    dense_flops = 2.0 * w * pair_count
    cx = (xw != 0).sum(axis=1, dtype=np.float64)
    if symmetric:
        sparse_flops = float((cx * (cx + 1.0)).sum())
    else:
        cy = (yw != 0).sum(axis=1, dtype=np.float64)
        sparse_flops = 2.0 * float((cx * cy).sum())
    flops = min(dense_flops, sparse_flops)
    working_set = float(x.nbytes + y.nbytes + out.nbytes)
    return KernelResult(out, flops, working_set)


def gram_popcount_blocked(
    x: BitMatrix,
    y: BitMatrix | None = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    word_tile: int = DEFAULT_WORD_TILE,
    use_hw_popcount: bool | None = None,
) -> KernelResult:
    """Word-tiled popcount Gram — the dense-regime fast path.

    Computes the same ``B[i, j] = sum_w popcount(x[:, i] & y[:, j])`` as
    :func:`gram_bitpacked`, but tiles the word-row dimension so the AND
    temporary of each step stays cache-resident, and fuses the popcount
    and accumulation into a single sweep over every tile.  Popcounts go
    through ``np.bitwise_count`` when the running NumPy provides it and
    otherwise through a byte lookup table (``use_hw_popcount`` pins a
    path for testing).

    Modelled cost: one word operation per (word-row, column pair) — half
    the two-pass reference sweep — with a per-tile working set, which is
    what makes the dispatcher prefer this kernel on dense batches.
    """
    symmetric = y is None
    if y is None:
        y = x
    if x.bit_width != y.bit_width:
        raise ValueError(f"bit widths differ: {x.bit_width} vs {y.bit_width}")
    if x.n_word_rows != y.n_word_rows:
        raise ValueError(
            f"word-row counts differ: {x.n_word_rows} vs {y.n_word_rows}"
        )
    w = x.n_word_rows
    n_x, n_y = x.n_cols, y.n_cols
    out = np.zeros((n_x, n_y), dtype=np.int64)
    if w == 0 or n_x == 0 or n_y == 0:
        return KernelResult(out, 0.0, 0.0)
    itemsize = x.words.dtype.itemsize
    tile = int(max(1, min(w, word_tile)))
    per_col = max(1, tile * n_y * itemsize)
    block = int(max(1, min(n_x, block_bytes // per_col)))
    xw = x.words
    yw = y.words
    for wlo in range(0, w, tile):
        whi = min(wlo + tile, w)
        xt = xw[wlo:whi]
        yt = yw[wlo:whi]
        for lo in range(0, n_x, block):
            hi = min(lo + block, n_x)
            if symmetric:
                anded = xt[:, lo:hi, None] & yt[:, None, lo:]
                out[lo:hi, lo:] += popcount_elementwise(
                    anded, use_hw_popcount
                ).sum(axis=0, dtype=np.int64)
            else:
                anded = xt[:, lo:hi, None] & yt[:, None, :]
                out[lo:hi, :] += popcount_elementwise(
                    anded, use_hw_popcount
                ).sum(axis=0, dtype=np.int64)
    if symmetric:
        out = np.triu(out)
        out = out + np.triu(out, k=1).T
    pair_count = (n_x * n_y) if not symmetric else (n_x * (n_x + 1)) // 2
    flops = float(w) * pair_count
    working_set = float(
        tile * (min(block, n_x) + n_y) * itemsize
        + tile * min(block, n_x) * n_y * itemsize
        + out.nbytes
    )
    return KernelResult(out, flops, working_set)


def gram_outer_pair(
    x: BitMatrix,
    y: BitMatrix | None = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
) -> KernelResult:
    """Hypersparse pairwise Gram ``B = X^T Y`` on bit-packed operands.

    Extracts bit-level coordinates from both operands (cheap exactly when
    the blocks are hypersparse), groups them by row, and accumulates the
    outer product ``B[c_k^x times c_k^y] += 1`` for every row ``k``
    present in both.  With ``y is None`` this reduces to the symmetric
    :func:`gram_csr_outer` accumulation and produces bit-identical
    results to the popcount kernels.

    Cost ``O(sum_k |c_k^x| * |c_k^y|)`` scatter-adds, independent of
    ``n_x * n_y``; chunks are bounded by ``block_bytes // 16`` index
    pairs at a time.
    """
    symmetric = y is None
    if y is None:
        y = x
    if x.bit_width != y.bit_width:
        raise ValueError(f"bit widths differ: {x.bit_width} vs {y.bit_width}")
    if x.n_word_rows != y.n_word_rows:
        raise ValueError(
            f"word-row counts differ: {x.n_word_rows} vs {y.n_word_rows}"
        )
    n_x, n_y = x.n_cols, y.n_cols
    out = np.zeros((n_x, n_y), dtype=np.int64)
    working_set = float(x.nbytes + y.nbytes + out.nbytes)
    xr, xc = x.nonzero_bits()
    if xr.size == 0:
        return KernelResult(out, 0.0, working_set)
    x_rows, x_starts, x_counts = np.unique(
        xr, return_index=True, return_counts=True
    )
    if symmetric:
        yc = xc
        sx, dx = x_starts, x_counts
        sy, dy = x_starts, x_counts
    else:
        yr, yc = y.nonzero_bits()
        if yr.size == 0:
            return KernelResult(out, 0.0, working_set)
        y_rows, y_starts, y_counts = np.unique(
            yr, return_index=True, return_counts=True
        )
        _, ix, iy = np.intersect1d(
            x_rows, y_rows, assume_unique=True, return_indices=True
        )
        sx, dx = x_starts[ix], x_counts[ix]
        sy, dy = y_starts[iy], y_counts[iy]
    if dx.size == 0:
        return KernelResult(out, 0.0, working_set)
    pair_counts = dx * dy
    flops = float(pair_counts.sum(dtype=np.float64))
    block_pairs = max(1, block_bytes // 16)
    csum = np.cumsum(pair_counts)
    start = 0
    while start < dx.size:
        base = int(csum[start - 1]) if start else 0
        end = int(np.searchsorted(csum, base + block_pairs, side="left")) + 1
        end = min(max(end, start + 1), dx.size)
        seg = slice(start, end)
        _scatter_row_pairs(out, xc, yc, sx[seg], dx[seg], sy[seg], dy[seg])
        start = end
    return KernelResult(out, flops, working_set)


def _scatter_row_pairs(
    out: np.ndarray,
    xc: np.ndarray,
    yc: np.ndarray,
    sx: np.ndarray,
    dx: np.ndarray,
    sy: np.ndarray,
    dy: np.ndarray,
) -> None:
    """Accumulate ``out[c_k^x x c_k^y] += 1`` for a chunk of row segments.

    ``sx``/``dx`` (``sy``/``dy``) give each segment's start and length in
    ``xc`` (``yc``).  Fully vectorized: the left operand repeats each x
    column ``dy`` times in place, the right operand tiles each y segment
    ``dx`` times via a modulo index trick.
    """
    out_lens = dx * dy
    total = int(out_lens.sum())
    if total == 0:
        return
    x_total = int(dx.sum())
    seg_of_x = np.repeat(np.arange(dx.size), dx)
    x_off = np.concatenate(([0], np.cumsum(dx)))[:-1]
    local_x = np.arange(x_total) - x_off[seg_of_x]
    xi = sx[seg_of_x] + local_x
    left = np.repeat(xc[xi], np.repeat(dy, dx))
    seg_of_out = np.repeat(np.arange(dx.size), out_lens)
    out_off = np.concatenate(([0], np.cumsum(out_lens)))[:-1]
    local = np.arange(total) - out_off[seg_of_out]
    yi = sy[seg_of_out] + (local % dy[seg_of_out])
    np.add.at(out, (left, yc[yi]), 1)


def gram_csr_outer(
    a: CsrMatrix,
    block_pairs: int = DEFAULT_BLOCK_BYTES // 16,
) -> KernelResult:
    """Hypersparse Gram via row outer products.

    For every stored row ``k`` with column indices ``c_k``, accumulates
    ``B[c_k x c_k] += 1`` (boolean inputs; weighted CSR uses the product
    of the two stored values).  Rows are processed grouped by degree so
    the pair expansion vectorizes; chunks are bounded by ``block_pairs``
    index pairs at a time.
    """
    n = a.shape[1]
    out = np.zeros((n, n), dtype=np.int64)
    degrees = a.row_degrees()
    nz_rows = np.flatnonzero(degrees > 0)
    if nz_rows.size == 0:
        return KernelResult(out, 0.0, 0.0)
    flops = float(np.square(degrees[nz_rows], dtype=np.float64).sum())
    for d in np.unique(degrees[nz_rows]):
        rows_d = nz_rows[degrees[nz_rows] == d]
        rows_per_chunk = max(1, block_pairs // int(d * d))
        for lo in range(0, rows_d.size, rows_per_chunk):
            chunk = rows_d[lo : lo + rows_per_chunk]
            # Gather the column lists of this degree class: (R, d).
            gather = (
                a.indptr[chunk][:, None] + np.arange(d, dtype=np.int64)[None, :]
            )
            cols = a.indices[gather]
            left = np.broadcast_to(cols[:, :, None], (chunk.size, d, d))
            right = np.broadcast_to(cols[:, None, :], (chunk.size, d, d))
            if a.is_boolean:
                np.add.at(out, (left.ravel(), right.ravel()), 1)
            else:
                vals = a.data[gather]
                prod = (vals[:, :, None] * vals[:, None, :]).astype(np.int64)
                np.add.at(out, (left.ravel(), right.ravel()), prod.ravel())
    working_set = float(a.nbytes + out.nbytes)
    return KernelResult(out, flops, working_set)


def colsum_bitpacked(x: BitMatrix) -> KernelResult:
    """Column popcounts — one batch's contribution to ``a-hat`` (Eq. 4)."""
    sums = x.column_popcounts()
    return KernelResult(sums, float(x.words.size), float(x.nbytes))


def colsum_csr(a: CsrMatrix) -> KernelResult:
    """Column sums of a CSR matrix."""
    sums = a.column_sums()
    return KernelResult(sums, float(a.nnz), float(a.nbytes))


def choose_gram_kernel(nnz: int, n_rows: int, n_cols: int, bit_width: int) -> str:
    """Pick the cheaper Gram kernel for a local block.

    Compares the modelled op counts: packed-word sweep ``2 * ceil(rows/b)
    * n^2 / 2`` versus row-outer ``nnz * avg_degree`` (estimated with a
    uniform-degree assumption).  Returns ``"bitpacked"`` or ``"outer"``.

    Superseded by :func:`repro.sparse.dispatch.choose_kernel`, which also
    knows the blocked fast path, weighs scatter ops against word ops, and
    reports the full decision; this simpler form is kept for the ablation
    benches and backward compatibility.
    """
    if n_rows <= 0 or n_cols <= 0 or nnz <= 0:
        return "bitpacked"
    w = -(-n_rows // bit_width)
    bitpacked_ops = float(w) * n_cols * (n_cols + 1)
    avg_degree = nnz / n_rows
    outer_ops = nnz * max(avg_degree, 1.0)
    return "bitpacked" if bitpacked_ops <= outer_ops else "outer"
