"""Streaming FASTA ingestion: chunked records -> k-mer batches.

The SampleStore path materializes every sample's full sequence set in
memory before any k-mer is extracted (``read_fasta`` loads the whole
file).  This module is the streaming alternative for datasets that
should never be fully materialized: FASTA records are consumed in
bounded-size chunks, k-mers are extracted chunk by chunk, and the
per-sample sorted code set is built by incremental merge — peak memory
is one chunk of sequence plus the (deduplicated) code set itself,
independent of genome length.

Three layers, each usable on its own:

* :func:`iter_sequence_chunks` — split a record stream into chunks of
  at most ``chunk_bases`` bases.  A sequence longer than the remaining
  chunk budget is *split across chunks with k-1 bases of overlap*, so
  every length-``k`` window lands in exactly one chunk and no k-mer is
  lost or double-counted at a boundary;
* :func:`stream_sample_kmers` — chunked FASTA -> iterator of per-chunk
  k-mer code batches (this is the "k-mer batches as an iterator" feed
  of the pipelined engine; with an executor that supports ``submit``,
  the next chunk's extraction is prefetched while the caller consumes
  the current one);
* :class:`StreamingKmerSource` — a full
  :class:`~repro.core.indicator.IndicatorSource` over FASTA files,
  plugging straight into :class:`~repro.core.similarity.SimilarityAtScale`
  (and therefore into the ``pipeline`` schedules) without an
  intermediate sample-store directory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.indicator import _reader_samples
from repro.genomics.fasta import iter_fasta
from repro.genomics.kmer import canonical_kmers, encode_kmers, kmer_space_size
from repro.genomics.sequence import SequenceRecord
from repro.sparse.coo import CooMatrix

#: Default chunk budget: 1 MiB of bases keeps peak sequence memory small
#: while leaving each chunk large enough to amortize extraction setup.
DEFAULT_CHUNK_BASES = 1 << 20


def iter_sequence_chunks(
    records: Iterable[SequenceRecord | str],
    k: int,
    chunk_bases: int = DEFAULT_CHUNK_BASES,
) -> Iterator[list[str]]:
    """Chunk a record stream into lists of segments of bounded size.

    Each yielded chunk is a list of sequence segments totalling at most
    ``chunk_bases`` bases (a single segment may exceed the budget only
    when ``chunk_bases < k`` would otherwise make progress impossible).
    Segments never join different records — no k-mer spans a record
    boundary — and a record split across chunks carries ``k - 1`` bases
    of overlap into the next chunk, so each of its length-``k`` windows
    appears in exactly one chunk.  Empty chunks are never yielded; an
    empty record stream yields nothing.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if chunk_bases <= 0:
        raise ValueError(f"chunk_bases must be positive, got {chunk_bases}")
    # A split segment must be able to hold at least one fresh window
    # beyond the k-1 overlap it repeats.
    min_split = max(chunk_bases, k)
    segments: list[str] = []
    used = 0
    for rec in records:
        seq = getattr(rec, "sequence", rec)
        pos = 0
        while pos < len(seq):
            room = min_split if not segments else chunk_bases - used
            if room < k:
                yield segments
                segments, used = [], 0
                continue
            take = min(len(seq) - pos, room)
            piece = seq[pos : pos + take]
            segments.append(piece)
            used += len(piece)
            # Advance past the piece; if the record continues, back up
            # k-1 bases so the next piece re-covers the boundary windows.
            pos += take
            if pos < len(seq):
                pos -= k - 1
                yield segments
                segments, used = [], 0
        if used >= chunk_bases:
            yield segments
            segments, used = [], 0
    if segments:
        yield segments


def _extract_chunk(segments: list[str], k: int, canonical: bool) -> np.ndarray:
    parts = []
    for seg in segments:
        codes = canonical_kmers(seg, k) if canonical else encode_kmers(seg, k)
        if codes.size:
            parts.append(codes)
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def stream_sample_kmers(
    path: str | Path,
    k: int,
    canonical: bool = True,
    chunk_bases: int = DEFAULT_CHUNK_BASES,
    executor=None,
) -> Iterator[np.ndarray]:
    """Yield one sorted, deduplicated k-mer code batch per FASTA chunk.

    Batches may overlap in content (the same k-mer can occur in several
    chunks); consumers dedupe across batches, e.g. with
    :func:`stream_kmer_set`.  A chunk containing no valid window (all
    bases ambiguous, or segments shorter than ``k``) yields an empty
    array rather than being skipped, so consumers can count chunks.

    ``executor`` may be any object with ``submit(fn, *args)`` returning
    a future (both runtime executors qualify); when given, the next
    chunk's extraction runs on it while the caller processes the
    current batch — genuine read/compute overlap for the ingestion
    front end under a :class:`~repro.runtime.executor.ThreadedExecutor`.
    """
    chunks = iter_sequence_chunks(iter_fasta(path), k, chunk_bases)
    if executor is None:
        for segments in chunks:
            yield _extract_chunk(segments, k, canonical)
        return
    pending = None
    for segments in chunks:
        nxt = executor.submit(_extract_chunk, segments, k, canonical)
        if pending is not None:
            yield pending.result()
        pending = nxt
    if pending is not None:
        yield pending.result()


def stream_kmer_set(
    path: str | Path,
    k: int,
    canonical: bool = True,
    chunk_bases: int = DEFAULT_CHUNK_BASES,
    executor=None,
) -> np.ndarray:
    """The sample's full sorted k-mer set, built by incremental merge.

    Equivalent to ``kmer_set(read_fasta(path), k)`` but never holds more
    than one chunk of sequence in memory.  Chunk batches are merged with
    a binary-counter strategy — pending batches accumulate until they
    rival the merged set's size, then fold in with one sort — so each
    code participates in O(log n_chunks) merge passes instead of the
    n_chunks full re-sorts a naive per-chunk ``union1d`` would pay.
    """
    merged = np.empty(0, dtype=np.int64)
    pending: list[np.ndarray] = []
    pending_n = 0
    for batch in stream_sample_kmers(path, k, canonical, chunk_bases, executor):
        if not batch.size:
            continue
        pending.append(batch)
        pending_n += batch.size
        if pending_n >= max(merged.size, batch.size):
            merged = np.unique(np.concatenate([merged, *pending]))
            pending, pending_n = [], 0
    if pending:
        merged = np.unique(np.concatenate([merged, *pending]))
    return merged


class StreamingKmerSource:
    """Batched indicator source over FASTA files, built by streaming.

    The streaming analogue of building a
    :class:`~repro.genomics.samples.SampleStore` and wrapping it in a
    :class:`~repro.core.indicator.FileSource`: sample ``j``'s sorted
    k-mer codes are assembled chunk by chunk on first access (memory
    bounded by one chunk plus the deduplicated set) and cached, then
    row-window reads serve the engine's batches via ``searchsorted``.
    Attribute rows are the k-mer codes, so ``m = 4^k``.

    ``executor`` (optional) prefetches chunk extraction during
    assembly; see :func:`stream_sample_kmers`.
    """

    def __init__(
        self,
        paths: Sequence[str | Path],
        k: int,
        canonical: bool = True,
        chunk_bases: int = DEFAULT_CHUNK_BASES,
        executor=None,
    ):
        self.paths = [Path(p) for p in paths]
        if not self.paths:
            raise ValueError("StreamingKmerSource requires at least one file")
        if chunk_bases <= 0:
            raise ValueError(
                f"chunk_bases must be positive, got {chunk_bases}"
            )
        self.k = int(k)
        self.canonical = canonical
        self.chunk_bases = int(chunk_bases)
        self.executor = executor
        self._m = kmer_space_size(self.k)
        self._cache: dict[int, np.ndarray] = {}

    @property
    def n(self) -> int:
        return len(self.paths)

    @property
    def m(self) -> int:
        return self._m

    @property
    def names(self) -> list[str]:
        """Sample names derived from the file stems."""
        return [p.stem for p in self.paths]

    def _load(self, j: int) -> np.ndarray:
        if j not in self._cache:
            self._cache[j] = stream_kmer_set(
                self.paths[j], self.k, self.canonical, self.chunk_bases,
                self.executor,
            )
        return self._cache[j]

    def read_batch(self, lo: int, hi: int, rank: int, n_readers: int) -> CooMatrix:
        rows_parts, cols_parts = [], []
        for j in _reader_samples(self.n, rank, n_readers):
            vals = self._load(j)
            a, b = np.searchsorted(vals, [lo, hi])
            window = vals[a:b]
            rows_parts.append(window - lo)
            cols_parts.append(np.full(window.size, j, dtype=np.int64))
        rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
        cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
        return CooMatrix(rows, cols, (hi - lo, self.n))

    def read_bytes(self, lo: int, hi: int, rank: int, n_readers: int) -> int:
        # Count window sizes without building the coordinate arrays —
        # this runs once per rank per batch alongside read_batch.
        nnz = 0
        for j in _reader_samples(self.n, rank, n_readers):
            a, b = np.searchsorted(self._load(j), [lo, hi])
            nnz += int(b - a)
        return nnz * 8

    def nnz_estimate(self) -> int:
        return sum(self._load(j).size for j in range(self.n))
