"""k-mer extraction and 2-bit encoding.

Alignment-free comparison represents a sequencing sample as the set of
its length-``k`` subsequences (§II-B).  GenomeAtScale maps each k-mer to
an integer in ``[0, 4^k)`` via the 2-bit code A=0, C=1, G=2, T=3 — these
integers are the *row indices* of the indicator matrix ``A``.

Two conventions from the paper's evaluation (§V-A2):

* **canonical k-mers** — a k-mer and its reverse complement are the same
  molecule on opposite strands, so the smaller of the two encodings
  represents both;
* **odd k** — the paper uses k=19 for Kingsford (not 20) and k=31 for
  BIGSI precisely so no k-mer can equal its own reverse complement,
  which would bias canonical counting.

Windows containing an ambiguous base (``N``) produce no k-mer.
"""

from __future__ import annotations

import numpy as np

from repro.genomics.sequence import ALPHABET, sequence_to_codes

#: k is capped so encodings fit a signed 64-bit integer: 4^31 < 2^63.
MAX_K = 31


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_K:
        raise ValueError(f"k must be in [1, {MAX_K}], got {k}")


def encode_kmers(seq: str, k: int) -> np.ndarray:
    """All forward-strand k-mer codes of ``seq``, in order.

    Windows overlapping an ambiguous base are skipped.  Vectorized:
    builds the code array once and combines strided windows by
    polynomial evaluation in base 4.
    """
    _check_k(k)
    codes = sequence_to_codes(seq)
    n = codes.size - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    windows = np.lib.stride_tricks.sliding_window_view(codes, k)
    valid = (windows != 255).all(axis=1)
    weights = (4 ** np.arange(k - 1, -1, -1, dtype=np.int64))
    vals = windows[valid].astype(np.int64) @ weights
    return vals


def reverse_complement_codes(kmers: np.ndarray, k: int) -> np.ndarray:
    """Reverse-complement encodings, computed arithmetically.

    Complement in 2-bit code is ``3 - digit``; reversal flips digit
    order.  Equivalent to encoding ``reverse_complement(decode(x))``.
    """
    _check_k(k)
    kmers = np.asarray(kmers, dtype=np.int64)
    out = np.zeros_like(kmers)
    rem = kmers.copy()
    for _ in range(k):
        digit = rem % 4
        out = out * 4 + (3 - digit)
        rem //= 4
    return out


def canonical_kmers(seq: str, k: int) -> np.ndarray:
    """Canonical (strand-independent) k-mer codes of ``seq``.

    For each window, the minimum of the forward and reverse-complement
    encodings.  With even ``k`` a palindromic k-mer can equal its own
    reverse complement; the paper avoids this by using odd ``k``
    (§V-A2), and so does every caller in this repository.
    """
    fwd = encode_kmers(seq, k)
    if fwd.size == 0:
        return fwd
    rev = reverse_complement_codes(fwd, k)
    return np.minimum(fwd, rev)


def kmer_set(
    sequences, k: int, canonical: bool = True
) -> np.ndarray:
    """The sorted, deduplicated k-mer set of a sample.

    ``sequences`` is an iterable of strings or
    :class:`~repro.genomics.sequence.SequenceRecord`; the result is the
    sample's row-index set for the indicator matrix.
    """
    parts = []
    for seq in sequences:
        text = getattr(seq, "sequence", seq)
        kmers = canonical_kmers(text, k) if canonical else encode_kmers(text, k)
        if kmers.size:
            parts.append(kmers)
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


def decode_kmer(code: int, k: int) -> str:
    """Inverse of the 2-bit encoding: code -> k-mer string."""
    _check_k(k)
    if not 0 <= code < 4**k:
        raise ValueError(f"code {code} out of range for k={k}")
    out = []
    for _ in range(k):
        out.append(ALPHABET[code % 4])
        code //= 4
    return "".join(reversed(out))


def kmer_space_size(k: int) -> int:
    """``m = 4^k``, the row count of the indicator matrix (§III-B)."""
    _check_k(k)
    return 4**k
