"""GenomeAtScale: the end-to-end tool (paper §IV and Fig. 1).

Connects the genomics front end (FASTA -> cleaned canonical k-mer sets
-> sorted numeric sample files) to the SimilarityAtScale back end
(batched distributed Jaccard) and the downstream analyses (distance
export, phylogenies).

The index methods (:meth:`GenomeAtScale.build_index`,
:meth:`~GenomeAtScale.extend_index`, :meth:`~GenomeAtScale.query_index`)
bridge the same front end to the persistent serving layer
(:mod:`repro.service`): build once, add genomes incrementally, answer
threshold/top-k queries without recomputing all pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import networkx as nx
import numpy as np

from repro.core.config import SimilarityConfig
from repro.core.result import SimilarityResult
from repro.core.similarity import SimilarityAtScale
from repro.genomics.counting import (
    CleaningReport,
    clean_sample,
    clean_sample_counts,
)
from repro.genomics.fasta import read_fasta
from repro.genomics.phylogeny import jaccard_tree
from repro.genomics.samples import SampleStore
from repro.runtime.engine import Machine


@dataclass
class GenomeAtScaleResult:
    """Genetic distances plus everything needed to interpret them."""

    names: list[str]
    k: int
    similarity_result: SimilarityResult
    cleaning: list[CleaningReport]

    @property
    def similarity(self) -> np.ndarray:
        return self.similarity_result.similarity

    @property
    def distance(self) -> np.ndarray:
        return self.similarity_result.distance

    @property
    def n_samples(self) -> int:
        return len(self.names)

    def tree(self, method: str = "nj") -> nx.Graph:
        """Phylogeny from the Jaccard distances (Fig. 1 part ¼/Ł)."""
        return jaccard_tree(self.distance, self.names, method=method)

    def to_phylip(self, path: str | Path) -> None:
        """Write the distance matrix in PHYLIP format for external tools."""
        d = self.distance
        lines = [f"{self.n_samples}"]
        for name, row in zip(self.names, d):
            label = name[:10].ljust(10)
            lines.append(label + " ".join(f"{v:.6f}" for v in row))
        Path(path).write_text("\n".join(lines) + "\n")

    def most_similar_pairs(self, top: int = 10) -> list[tuple[str, str, float]]:
        """Highest-similarity sample pairs (similar-sample discovery, Ł)."""
        s = self.similarity
        n = self.n_samples
        pairs = [
            (s[i, j], i, j) for i in range(n) for j in range(i + 1, n)
        ]
        pairs.sort(reverse=True)
        return [
            (self.names[i], self.names[j], float(v))
            for v, i, j in pairs[:top]
        ]


class GenomeAtScale:
    """Distributed genetic-distance tool.

    Parameters
    ----------
    machine:
        The simulated machine to run the distributed phase on.
    config:
        SimilarityAtScale tuning knobs.
    k:
        k-mer length; must be odd (§V-A2).  Paper values: 19 (Kingsford),
        31 (BIGSI).
    canonical:
        Use canonical (strand-independent) k-mers.
    min_count:
        k-mer abundance threshold for noise cleaning.  ``None`` applies
        the size-based Kingsford rule; 1 keeps everything (appropriate
        for assembled genomes).
    """

    def __init__(
        self,
        machine: Machine | None = None,
        config: SimilarityConfig | None = None,
        k: int = 31,
        canonical: bool = True,
        min_count: int | None = 1,
    ):
        if k % 2 == 0:
            raise ValueError(f"k must be odd (paper §V-A2), got {k}")
        self.machine = machine
        self.config = config
        self.k = k
        self.canonical = canonical
        self.min_count = min_count

    # ---- part I: building the sample representation --------------------

    def build_store(
        self,
        fasta_paths: list[str | Path],
        store_dir: str | Path,
        names: list[str] | None = None,
    ) -> tuple[SampleStore, list[CleaningReport]]:
        """FASTA files -> sorted numeric sample store (Fig. 1, ¹)."""
        paths = [Path(p) for p in fasta_paths]
        if not paths:
            raise ValueError("need at least one FASTA file")
        if names is None:
            names = [p.stem for p in paths]
        if len(names) != len(paths):
            raise ValueError(
                f"{len(names)} names for {len(paths)} FASTA files"
            )
        store = SampleStore.create(store_dir, k=self.k, canonical=self.canonical)
        reports = []
        for name, path in zip(names, paths):
            records = read_fasta(path)
            codes, report = clean_sample(
                records, self.k, min_count=self.min_count,
                canonical=self.canonical,
            )
            store.add_sample(name, codes)
            reports.append(report)
        return store, reports

    # ---- parts II + III: distributed distances -------------------------

    def run_store(
        self, store: SampleStore, cleaning: list[CleaningReport] | None = None
    ) -> GenomeAtScaleResult:
        """Compute all-pairs genetic distances over a sample store."""
        engine = SimilarityAtScale(machine=self.machine, config=self.config)
        result = engine.run(store.as_source())
        return GenomeAtScaleResult(
            names=list(store.names),
            k=store.k,
            similarity_result=result,
            cleaning=cleaning if cleaning is not None else [],
        )

    def run_fasta(
        self,
        fasta_paths: list[str | Path],
        workdir: str | Path,
        names: list[str] | None = None,
    ) -> GenomeAtScaleResult:
        """End to end: FASTA files -> distance matrix."""
        store, reports = self.build_store(
            fasta_paths, Path(workdir) / "samples", names
        )
        return self.run_store(store, cleaning=reports)

    # ---- the persistent index (repro.service) --------------------------

    @property
    def _weighted(self) -> bool:
        """Whether the configured measure consumes k-mer abundances."""
        return (
            self.config is not None
            and self.config.similarity == "weighted_jaccard"
        )

    def _clean_inputs(
        self, fasta_paths: list[str | Path], names: list[str] | None
    ) -> list[tuple]:
        """FASTA files -> cleaned index items.

        ``(name, codes)`` pairs normally; under ``weighted_jaccard``
        the surviving abundances are kept and the items are
        ``(name, codes, counts)`` triples, which every store-layer
        entry point (:meth:`IndexStore.append_many` and friends)
        accepts directly.
        """
        paths = [Path(p) for p in fasta_paths]
        if not paths:
            raise ValueError("need at least one FASTA file")
        if names is None:
            names = [p.stem for p in paths]
        if len(names) != len(paths):
            raise ValueError(
                f"{len(names)} names for {len(paths)} FASTA files"
            )
        out = []
        for name, path in zip(names, paths):
            if self._weighted:
                codes, counts, _ = clean_sample_counts(
                    read_fasta(path), self.k, min_count=self.min_count,
                    canonical=self.canonical,
                )
                out.append((name, codes, counts))
            else:
                codes, _ = clean_sample(
                    read_fasta(path), self.k, min_count=self.min_count,
                    canonical=self.canonical,
                )
                out.append((name, codes))
        return out

    def build_index(
        self,
        fasta_paths: list[str | Path],
        index_dir: str | Path,
        names: list[str] | None = None,
    ):
        """FASTA files -> a persistent, query-ready similarity index.

        Routes through the :class:`~repro.service.api.SimilarityService`
        facade: ``config.store_shards`` picks the layout (a flat
        :class:`~repro.service.store.IndexStore` or a size-banded
        :class:`~repro.service.sharded.ShardedStore`, banded over the
        cleaned sample sizes), every sample is appended, and the exact
        all-pairs Gram is persisted so later :meth:`extend_index` calls
        only compute border blocks.  Returns the store.
        """
        from repro.genomics.kmer import kmer_space_size
        from repro.service import SimilarityService

        config = self.config if self.config is not None else SimilarityConfig()
        cleaned = self._clean_inputs(fasta_paths, names)
        service = SimilarityService.create(
            index_dir,
            m=kmer_space_size(self.k),
            machine=self.machine,
            config=config,
            metadata={
                "k": self.k,
                "canonical": self.canonical,
                "min_count": self.min_count,
            },
            size_hint=np.array(
                [item[1].size for item in cleaned], dtype=np.int64
            ),
        )
        service.add(cleaned)
        return service.store

    def _open_index(self, index_dir: str | Path):
        from repro.service import open_store

        store = open_store(index_dir)
        if store.metadata.get("k") != self.k:
            raise ValueError(
                f"index at {index_dir} was built with k="
                f"{store.metadata.get('k')}, tool is configured for "
                f"k={self.k}"
            )
        if store.metadata.get("canonical") != self.canonical:
            # A canonical-mode mismatch puts queries and adds on a
            # different k-mer code space — similarities would be
            # silently wrong, and an add would corrupt the stored Gram.
            raise ValueError(
                f"index at {index_dir} was built with canonical="
                f"{store.metadata.get('canonical')}, tool is configured "
                f"for canonical={self.canonical}"
            )
        if store.metadata.get("min_count") != self.min_count:
            # Same cleaning threshold everywhere, or new genomes keep
            # k-mers the indexed ones were stripped of.
            raise ValueError(
                f"index at {index_dir} was built with min_count="
                f"{store.metadata.get('min_count')}, tool is configured "
                f"for min_count={self.min_count}"
            )
        return store

    def extend_index(
        self,
        index_dir: str | Path,
        fasta_paths: list[str | Path],
        names: list[str] | None = None,
    ):
        """Incrementally add samples to an existing index.

        Only the new-vs-existing border block of the Gram is computed
        (see :mod:`repro.service.incremental`); the stored result is
        bit-identical to rebuilding from scratch.  Returns the
        :class:`~repro.service.incremental.IncrementalReport`.
        """
        return self._service(index_dir).add(
            self._clean_inputs(fasta_paths, names)
        )

    def _service(self, index_dir: str | Path):
        """The metadata-validated service facade over an index dir."""
        from repro.service import SimilarityService

        return SimilarityService(
            self._open_index(index_dir),
            machine=self.machine, config=self.config,
        )

    def query_index(
        self,
        index_dir: str | Path,
        fasta_path: str | Path,
        threshold: float | None = None,
        top_k: int | None = None,
    ):
        """Threshold/top-k query of one FASTA sample against an index.

        Returns the :class:`~repro.service.query.QueryResult` of the
        cascade (size bound -> sketch prefilter -> exact verify); on a
        sharded index only the overlapping size bands are consulted.
        """
        item, = self._clean_inputs([fasta_path], None)
        counts = item[2] if len(item) == 3 else None
        return self._service(index_dir).query(
            values=item[1], threshold=threshold, top_k=top_k, counts=counts,
        )

    def query_index_batch(
        self,
        index_dir: str | Path,
        fasta_paths: list[str | Path],
        threshold: float | None = None,
        top_k: int | None = None,
    ):
        """Batched threshold/top-k queries of many samples at once.

        All samples run through the :class:`~repro.service.batch.QueryBatcher`
        (one size-sorted window + one rectangular popcount block per
        admitted batch of ``config.query_batch_size``); results come
        back in input order and match :meth:`query_index` exactly —
        on a sharded index each query is batched per overlapping band.
        """
        from repro.service.batch import BatchQuery

        cleaned = self._clean_inputs(fasta_paths, None)
        if self._weighted:
            queries = [
                BatchQuery(codes, threshold=threshold, top_k=top_k,
                           counts=counts)
                for _, codes, counts in cleaned
            ]
        else:
            queries = [codes for _, codes in cleaned]
        return self._service(index_dir).query_batch(
            queries, threshold=threshold, top_k=top_k,
        )

    def run_streaming(
        self,
        fasta_paths: list[str | Path],
        chunk_bases: int | None = None,
    ) -> GenomeAtScaleResult:
        """Streaming end to end: chunked FASTA -> distance matrix.

        Skips the sample-store materialization entirely: each sample's
        k-mer set is assembled chunk by chunk by
        :class:`~repro.genomics.stream.StreamingKmerSource`, so no full
        sequence set is ever held in memory.  Abundance cleaning needs
        global per-k-mer counts, which a single streaming pass does not
        keep, so this path requires ``min_count=1`` (keep every k-mer —
        appropriate for assembled genomes; use the sample-store path for
        read sets that need cleaning).
        """
        from repro.genomics.stream import DEFAULT_CHUNK_BASES, StreamingKmerSource

        if self.min_count != 1:
            raise ValueError(
                "streaming ingestion has no global k-mer counts for "
                f"abundance cleaning; requires min_count=1, got "
                f"{self.min_count}"
            )
        source = StreamingKmerSource(
            fasta_paths, k=self.k, canonical=self.canonical,
            chunk_bases=(
                chunk_bases if chunk_bases is not None else DEFAULT_CHUNK_BASES
            ),
        )
        engine = SimilarityAtScale(machine=self.machine, config=self.config)
        result = engine.run(source)
        return GenomeAtScaleResult(
            names=source.names, k=self.k,
            similarity_result=result, cleaning=[],
        )
