"""Phylogenetic tree construction from distance matrices.

The downstream analyses of Fig. 1 (parts ¼–Ł): the Jaccard distance
matrix feeds clustering "for the construction of phylogenetic trees
[67]" (Saitou & Nei's neighbor-joining) and "guide trees for large-scale
multiple sequence alignment".  This module implements neighbor-joining
and UPGMA over arbitrary distance matrices, plus utilities to compare a
reconstructed tree against ground truth (cophenetic distances and
Robinson–Foulds).
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def _check_distance_matrix(d: np.ndarray, names: list[str]) -> np.ndarray:
    d = np.asarray(d, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValueError(f"distance matrix must be square, got {d.shape}")
    if len(names) != d.shape[0]:
        raise ValueError(
            f"{len(names)} names for a {d.shape[0]}x{d.shape[0]} matrix"
        )
    if len(set(names)) != len(names):
        raise ValueError("leaf names must be unique")
    if not np.allclose(d, d.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    if np.any(np.diag(d) != 0):
        raise ValueError("self-distances must be zero")
    return d


def neighbor_joining(distances: np.ndarray, names: list[str]) -> nx.Graph:
    """Saitou–Nei neighbor-joining [67].

    Returns an unrooted tree as a :class:`networkx.Graph` whose edges
    carry ``length`` attributes; leaves keep their input names.  Exactly
    reconstructs any additive (tree) metric.
    """
    d = _check_distance_matrix(distances, names).copy()
    n = len(names)
    tree = nx.Graph()
    tree.add_nodes_from(names)
    if n == 1:
        tree.graph["root"] = names[0]
        return tree
    if n == 2:
        tree.add_edge(names[0], names[1], length=float(d[0, 1]))
        tree.graph["root"] = names[0]
        return tree

    active = list(names)
    counter = 0
    while len(active) > 2:
        r = len(active)
        totals = d.sum(axis=1)
        # Q-criterion: q_ij = (r - 2) d_ij - total_i - total_j.
        q = (r - 2) * d - totals[:, None] - totals[None, :]
        np.fill_diagonal(q, np.inf)
        i, j = np.unravel_index(np.argmin(q), q.shape)
        if i > j:
            i, j = j, i
        # Branch lengths to the new internal node.
        delta = (totals[i] - totals[j]) / (r - 2)
        li = 0.5 * d[i, j] + 0.5 * delta
        lj = d[i, j] - li
        node = f"nj{counter}"
        counter += 1
        tree.add_edge(node, active[i], length=max(float(li), 0.0))
        tree.add_edge(node, active[j], length=max(float(lj), 0.0))
        # Distances from the new node to the remaining taxa.
        keep = [k for k in range(r) if k not in (i, j)]
        new_row = 0.5 * (d[i, keep] + d[j, keep] - d[i, j])
        d = d[np.ix_(keep, keep)]
        d = np.pad(d, ((0, 1), (0, 1)))
        d[-1, :-1] = new_row
        d[:-1, -1] = new_row
        active = [active[k] for k in keep] + [node]
    tree.add_edge(active[0], active[1], length=max(float(d[0, 1]), 0.0))
    tree.graph["root"] = active[-1]
    return tree


def upgma(distances: np.ndarray, names: list[str]) -> nx.Graph:
    """UPGMA agglomerative clustering into a rooted ultrametric tree.

    Edge lengths are height differences; appropriate when distances are
    approximately clock-like (guide trees for progressive alignment).
    """
    d = _check_distance_matrix(distances, names).copy()
    n = len(names)
    tree = nx.Graph()
    tree.add_nodes_from(names)
    if n == 1:
        tree.graph["root"] = names[0]
        return tree
    active = list(names)
    heights = {name: 0.0 for name in names}
    sizes = {name: 1 for name in names}
    counter = 0
    while len(active) > 1:
        r = len(active)
        masked = d + np.where(np.eye(r, dtype=bool), np.inf, 0.0)
        i, j = np.unravel_index(np.argmin(masked), masked.shape)
        if i > j:
            i, j = j, i
        a, b = active[i], active[j]
        node = f"up{counter}"
        counter += 1
        h = d[i, j] / 2.0
        tree.add_edge(node, a, length=max(h - heights[a], 0.0))
        tree.add_edge(node, b, length=max(h - heights[b], 0.0))
        heights[node] = h
        sizes[node] = sizes[a] + sizes[b]
        keep = [k for k in range(r) if k not in (i, j)]
        merged = (
            sizes[a] * d[i, keep] + sizes[b] * d[j, keep]
        ) / (sizes[a] + sizes[b])
        d = d[np.ix_(keep, keep)]
        d = np.pad(d, ((0, 1), (0, 1)))
        d[-1, :-1] = merged
        d[:-1, -1] = merged
        active = [active[k] for k in keep] + [node]
    tree.graph["root"] = active[0]
    return tree


def cophenetic_distances(tree: nx.Graph, names: list[str]) -> np.ndarray:
    """Pairwise path lengths between leaves along the tree."""
    n = len(names)
    out = np.zeros((n, n), dtype=np.float64)
    lengths = dict(
        nx.all_pairs_dijkstra_path_length(tree, weight="length")
    )
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if i < j:
                out[i, j] = out[j, i] = lengths[a][b]
    return out


def _leaf_bipartitions(tree: nx.Graph, leaves: frozenset) -> set[frozenset]:
    """Non-trivial leaf splits induced by internal edges."""
    splits = set()
    for u, v in tree.edges:
        pruned = tree.copy()
        pruned.remove_edge(u, v)
        side = frozenset(
            x for x in nx.node_connected_component(pruned, u) if x in leaves
        )
        if 1 < len(side) < len(leaves) - 1:
            splits.add(min(side, frozenset(leaves - side), key=sorted))
    return splits


def robinson_foulds(tree_a: nx.Graph, tree_b: nx.Graph) -> int:
    """Robinson–Foulds distance: differing bipartitions between trees.

    Both trees must have identical leaf sets (nodes of degree 1 whose
    names appear in both).  Zero means topologically identical.
    """
    leaves_a = {x for x in tree_a.nodes if tree_a.degree(x) == 1}
    leaves_b = {x for x in tree_b.nodes if tree_b.degree(x) == 1}
    if leaves_a != leaves_b:
        raise ValueError(
            f"leaf sets differ: {sorted(leaves_a)} vs {sorted(leaves_b)}"
        )
    leaves = frozenset(leaves_a)
    sa = _leaf_bipartitions(tree_a, leaves)
    sb = _leaf_bipartitions(tree_b, leaves)
    return len(sa ^ sb)


def tree_to_newick(tree: nx.Graph, root: str | None = None) -> str:
    """Serialize a tree to Newick format (for external viewers)."""
    root = root if root is not None else tree.graph.get("root")
    if root is None or root not in tree:
        raise ValueError("tree has no usable root node")

    def render(node: str, parent: str | None) -> str:
        children = [x for x in tree.neighbors(node) if x != parent]
        if not children:
            return str(node)
        inner = ",".join(
            f"{render(c, node)}:{tree.edges[node, c]['length']:.6g}"
            for c in children
        )
        return f"({inner}){node if parent is None else ''}"

    return render(root, None) + ";"


def jaccard_tree(
    distance_matrix: np.ndarray, names: list[str], method: str = "nj"
) -> nx.Graph:
    """Build a phylogeny from a Jaccard distance matrix (Fig. 1, ¼/Ł)."""
    if method == "nj":
        return neighbor_joining(distance_matrix, names)
    if method == "upgma":
        return upgma(distance_matrix, names)
    raise ValueError(f"unknown method {method!r}; expected 'nj' or 'upgma'")
