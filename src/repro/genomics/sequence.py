"""DNA sequences: alphabet, complements, records.

A genome is a collection of sequences over the nucleotide alphabet
{A, C, G, T}, with ``N`` marking unknown bases (§II-B and Fig. 1).  All
sequence handling here is uppercase ASCII; lowercase input is folded on
ingestion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Canonical nucleotide ordering used by the 2-bit encoding.
ALPHABET = "ACGT"

#: Complement map over the extended alphabet.
COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}

_COMPLEMENT_TABLE = str.maketrans(COMPLEMENT)

#: Byte-level base -> 2-bit code lookup (255 marks invalid/ambiguous).
BASE_CODES = np.full(256, 255, dtype=np.uint8)
for _i, _b in enumerate(ALPHABET):
    BASE_CODES[ord(_b)] = _i
    BASE_CODES[ord(_b.lower())] = _i


def is_valid_sequence(seq: str) -> bool:
    """True when ``seq`` contains only A/C/G/T/N (case-insensitive)."""
    return all(ch in "ACGTN" for ch in seq.upper())


def reverse_complement(seq: str) -> str:
    """The reverse complement (e.g. ``AACG`` -> ``CGTT``)."""
    return seq.upper().translate(_COMPLEMENT_TABLE)[::-1]


def sequence_to_codes(seq: str) -> np.ndarray:
    """Map a sequence to 2-bit base codes (255 where ambiguous)."""
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    return BASE_CODES[raw]


@dataclass(frozen=True)
class SequenceRecord:
    """One named sequence (a FASTA entry / chromosome / read)."""

    name: str
    sequence: str
    quality: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sequence", self.sequence.upper())
        if not is_valid_sequence(self.sequence):
            bad = sorted(set(self.sequence) - set("ACGTN"))
            raise ValueError(
                f"record {self.name!r} contains invalid bases: {bad}"
            )
        if self.quality is not None and len(self.quality) != len(self.sequence):
            raise ValueError(
                f"record {self.name!r}: quality length "
                f"{len(self.quality)} != sequence length {len(self.sequence)}"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def gc_content(self) -> float:
        """Fraction of G/C bases among unambiguous positions."""
        acgt = sum(self.sequence.count(b) for b in "ACGT")
        if acgt == 0:
            return 0.0
        gc = self.sequence.count("G") + self.sequence.count("C")
        return gc / acgt

    def reverse_complemented(self) -> "SequenceRecord":
        return SequenceRecord(
            name=self.name,
            sequence=reverse_complement(self.sequence),
            quality=self.quality[::-1] if self.quality else None,
        )
