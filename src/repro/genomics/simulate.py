"""Synthetic cohorts: the stand-in for the paper's real datasets.

The paper evaluates on 2,580 human RNASeq experiments (Kingsford/BBB,
low variability, k=19, indicator density ~1.5e-4) and on the 446,506
bacterial/viral samples behind BIGSI (high variability, k=31, density
~4e-12).  Neither dataset — 170 TB of raw reads — is available offline,
so this module generates cohorts with the *load-bearing properties* of
each regime (see DESIGN.md §2):

* **kingsford-like** — samples related through a phylogeny, sharing most
  of their k-mer content (dense columns, low variance);
* **bigsi-like** — mutually unrelated genomes at k=31, whose indicator
  matrix over ``m = 4^31`` rows is genuinely hypersparse with
  heavy-tailed per-sample density.

Every generator is deterministic in its seed (via
:mod:`repro.util.prng`), and the true phylogeny is returned so
downstream analyses (Fig. 1 parts ¼–Ł) can be validated against ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

import networkx as nx
import numpy as np

from repro.genomics.sequence import ALPHABET, SequenceRecord, reverse_complement
from repro.util.prng import rng_for


def random_genome(rng: np.random.Generator, length: int, gc: float = 0.5) -> str:
    """A random genome of the given length and GC content."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if not 0.0 <= gc <= 1.0:
        raise ValueError(f"gc must be in [0, 1], got {gc}")
    probs = np.array([(1 - gc) / 2, gc / 2, gc / 2, (1 - gc) / 2])
    draws = rng.choice(4, size=length, p=probs)
    return "".join(ALPHABET[i] for i in draws)


def mutate(rng: np.random.Generator, seq: str, rate: float) -> str:
    """Apply i.i.d. point substitutions at the given per-site rate."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if not seq or rate == 0.0:
        return seq
    arr = np.frombuffer(seq.encode(), dtype=np.uint8).copy()
    hits = np.flatnonzero(rng.random(arr.size) < rate)
    if hits.size:
        # Substitute with one of the three *other* bases.
        bases = np.frombuffer(b"ACGT", dtype=np.uint8)
        current = arr[hits]
        offsets = rng.integers(1, 4, size=hits.size)
        idx = np.searchsorted(bases, current)
        # Positions holding N map past the table; leave those untouched.
        ok = (idx < 4) & (bases[np.minimum(idx, 3)] == current)
        arr[hits[ok]] = bases[(idx[ok] + offsets[ok]) % 4]
    return arr.tobytes().decode()


def random_phylogeny(
    rng: np.random.Generator, names: list[str], mean_branch: float
) -> nx.Graph:
    """A random binary tree over the leaves, with exponential branches.

    Built by repeated random coalescence; edge attribute ``length`` holds
    the per-site substitution probability along that branch.
    """
    if not names:
        raise ValueError("need at least one leaf")
    tree = nx.Graph()
    active = list(names)
    tree.add_nodes_from(active)
    counter = 0
    while len(active) > 1:
        i, j = sorted(rng.choice(len(active), size=2, replace=False))
        a, b = active[i], active[j]
        parent = f"anc{counter}"
        counter += 1
        tree.add_node(parent)
        tree.add_edge(parent, a, length=float(rng.exponential(mean_branch)))
        tree.add_edge(parent, b, length=float(rng.exponential(mean_branch)))
        active = [x for k, x in enumerate(active) if k not in (i, j)]
        active.append(parent)
    tree.graph["root"] = active[0]
    return tree


def evolve_down_tree(
    rng: np.random.Generator, tree: nx.Graph, root_genome: str
) -> dict[str, str]:
    """Evolve a root genome down the phylogeny; returns node -> genome."""
    root = tree.graph["root"]
    genomes = {root: root_genome}
    for parent, child in nx.bfs_edges(tree, root):
        rate = min(0.75, tree.edges[parent, child]["length"])
        genomes[child] = mutate(rng, genomes[parent], rate)
    return genomes


def reads_from_genome(
    rng: np.random.Generator,
    genome: str,
    coverage: float,
    read_length: int,
    error_rate: float,
    sample_name: str = "sample",
) -> list[SequenceRecord]:
    """Shotgun reads: random positions, random strand, point errors.

    Models the paper's Fig. 1 part ¶-¸ — sequencing breaks the genome
    into amplified fragments before any analysis sees it.
    """
    if read_length <= 0:
        raise ValueError(f"read_length must be positive, got {read_length}")
    if coverage < 0:
        raise ValueError(f"coverage must be non-negative, got {coverage}")
    if len(genome) < read_length:
        raise ValueError(
            f"genome ({len(genome)} bp) shorter than read length "
            f"{read_length}"
        )
    n_reads = int(round(coverage * len(genome) / read_length))
    starts = rng.integers(0, len(genome) - read_length + 1, size=n_reads)
    reads = []
    for idx, s in enumerate(starts):
        fragment = genome[s : s + read_length]
        if rng.random() < 0.5:
            fragment = reverse_complement(fragment)
        fragment = mutate(rng, fragment, error_rate)
        reads.append(
            SequenceRecord(name=f"{sample_name}_read{idx}", sequence=fragment)
        )
    return reads


@dataclass(frozen=True)
class CohortSpec:
    """Parameters of a synthetic sequencing cohort."""

    n_samples: int = 16
    genome_length: int = 20_000
    k: int = 19
    mean_branch: float = 0.01
    independent: bool = False
    reads: bool = False
    coverage: float = 4.0
    read_length: int = 100
    error_rate: float = 0.002
    gc: float = 0.45
    seed: int = 0
    name: str = "cohort"

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {self.n_samples}")
        if self.genome_length <= 0:
            raise ValueError(
                f"genome_length must be positive, got {self.genome_length}"
            )
        if self.k % 2 == 0:
            # §V-A2: odd k avoids k-mers equal to their reverse complement.
            raise ValueError(f"k must be odd (paper §V-A2), got {self.k}")


@dataclass
class SimulatedCohort:
    """A generated cohort: per-sample sequences plus ground truth."""

    spec: CohortSpec
    names: list[str]
    sample_records: list[list[SequenceRecord]]
    genomes: dict[str, str]
    true_tree: nx.Graph | None = None
    fasta_paths: list[Path] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return len(self.names)

    def write_fasta(self, directory: str | Path) -> list[Path]:
        """Materialize one FASTA file per sample; returns the paths."""
        from repro.genomics.fasta import write_fasta

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for name, records in zip(self.names, self.sample_records):
            path = directory / f"{name}.fasta"
            write_fasta(path, records)
            paths.append(path)
        self.fasta_paths = paths
        return paths

    def true_distances(self) -> np.ndarray:
        """Pairwise path lengths on the true tree (additive distances)."""
        if self.true_tree is None:
            raise ValueError("cohort has no phylogeny (independent samples)")
        from repro.genomics.phylogeny import cophenetic_distances

        return cophenetic_distances(self.true_tree, self.names)


def simulate_cohort(spec: CohortSpec) -> SimulatedCohort:
    """Generate a cohort per the spec (deterministic in ``spec.seed``)."""
    names = [f"{spec.name}_{i:04d}" for i in range(spec.n_samples)]
    tree: nx.Graph | None = None
    if spec.independent:
        genomes = {
            name: random_genome(
                rng_for(spec.seed, "genome", i), spec.genome_length, spec.gc
            )
            for i, name in enumerate(names)
        }
    else:
        tree_rng = rng_for(spec.seed, "tree")
        tree = random_phylogeny(tree_rng, names, spec.mean_branch)
        root_genome = random_genome(
            rng_for(spec.seed, "root"), spec.genome_length, spec.gc
        )
        genomes = evolve_down_tree(rng_for(spec.seed, "evolve"), tree, root_genome)

    sample_records: list[list[SequenceRecord]] = []
    for i, name in enumerate(names):
        genome = genomes[name]
        if spec.reads:
            records = reads_from_genome(
                rng_for(spec.seed, "reads", i),
                genome,
                spec.coverage,
                spec.read_length,
                spec.error_rate,
                sample_name=name,
            )
        else:
            records = [SequenceRecord(name=name, sequence=genome)]
        sample_records.append(records)
    return SimulatedCohort(
        spec=spec,
        names=names,
        sample_records=sample_records,
        genomes={n: genomes[n] for n in names},
        true_tree=tree,
    )


def kingsford_like(
    n_samples: int = 32, genome_length: int = 20_000, seed: int = 0
) -> CohortSpec:
    """A low-variability cohort in the Kingsford/BBB regime (§V-A2).

    Phylogeny-related samples at k=19: column densities are high and
    similar, like the RNASeq experiments from the same three tissues.
    """
    return CohortSpec(
        n_samples=n_samples,
        genome_length=genome_length,
        k=19,
        mean_branch=0.008,
        independent=False,
        seed=seed,
        name="kingsford",
    )


def bigsi_like(
    n_samples: int = 32, genome_length: int = 20_000, seed: int = 0
) -> CohortSpec:
    """A high-variability cohort in the BIGSI regime (§V-A2).

    Mutually unrelated genomes at k=31: over ``m = 4^31`` possible rows
    the indicator matrix is hypersparse and column densities vary freely
    (genome lengths could be varied too; unrelatedness is the dominant
    effect for the algorithm's behaviour).
    """
    return CohortSpec(
        n_samples=n_samples,
        genome_length=genome_length,
        k=31,
        independent=True,
        seed=seed,
        name="bigsi",
    )


def with_reads(spec: CohortSpec, coverage: float = 4.0,
               error_rate: float = 0.002) -> CohortSpec:
    """Variant of a cohort spec that emits raw reads instead of genomes."""
    return replace(spec, reads=True, coverage=coverage, error_rate=error_rate)
