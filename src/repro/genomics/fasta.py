"""FASTA / FASTQ parsing and writing.

GenomeAtScale maintains compatibility with the standard bioinformatics
formats (§I, §V-A2: "All input data is provided in the FASTA format").
The reader is line-streaming and tolerant of multi-line sequences,
blank lines, and gzip-compressed files (suffix ``.gz``).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

from repro.genomics.sequence import SequenceRecord


def _open_text(path: str | Path) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt")
    return open(path, "r")


def iter_fasta(path: str | Path) -> Iterator[SequenceRecord]:
    """Stream records from a FASTA file."""
    name: str | None = None
    parts: list[str] = []
    with _open_text(path) as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield SequenceRecord(name=name, sequence="".join(parts))
                name = line[1:].split()[0] if len(line) > 1 else ""
                parts = []
            else:
                if name is None:
                    raise ValueError(
                        f"{path}: sequence data before the first '>' header"
                    )
                parts.append(line)
        if name is not None:
            yield SequenceRecord(name=name, sequence="".join(parts))


def read_fasta(path: str | Path) -> list[SequenceRecord]:
    """Read an entire FASTA file into memory."""
    records = list(iter_fasta(path))
    if not records:
        raise ValueError(f"{path}: no FASTA records found")
    return records


def write_fasta(
    path: str | Path, records: list[SequenceRecord], line_width: int = 70
) -> None:
    """Write records as FASTA with wrapped sequence lines."""
    if line_width <= 0:
        raise ValueError(f"line_width must be positive, got {line_width}")
    path = Path(path)
    opener = gzip.open(path, "wt") if path.suffix == ".gz" else open(path, "w")
    with opener as fh:
        for rec in records:
            fh.write(f">{rec.name}\n")
            seq = rec.sequence
            for i in range(0, len(seq), line_width):
                fh.write(seq[i : i + line_width] + "\n")


def iter_fastq(path: str | Path) -> Iterator[SequenceRecord]:
    """Stream records from a FASTQ file (4-line records)."""
    with _open_text(path) as fh:
        while True:
            header = fh.readline()
            if not header:
                return
            header = header.strip()
            if not header:
                continue
            if not header.startswith("@"):
                raise ValueError(f"{path}: expected '@' header, got {header!r}")
            seq = fh.readline().strip()
            plus = fh.readline().strip()
            qual = fh.readline().strip()
            if not plus.startswith("+"):
                raise ValueError(f"{path}: malformed FASTQ separator {plus!r}")
            yield SequenceRecord(
                name=header[1:].split()[0], sequence=seq, quality=qual
            )


def read_fastq(path: str | Path) -> list[SequenceRecord]:
    """Read an entire FASTQ file into memory."""
    records = list(iter_fastq(path))
    if not records:
        raise ValueError(f"{path}: no FASTQ records found")
    return records
