"""Command-line interface: ``genome-at-scale``.

Two modes:

* **batch** (the default, no subcommand): runs the full all-pairs
  pipeline on a directory of FASTA files against a configurable
  simulated machine and writes the similarity/distance matrices, a
  PHYLIP export, a Newick tree, and the BSP cost report.
* **index** (``genome-at-scale index build|add|query|shard``): the
  persistent serving layer — build an on-disk similarity index from
  FASTA samples (flat, or size-band sharded with ``--shards``), extend
  it incrementally (border-block Gram updates), answer threshold/top-k
  queries through the pruning cascade of :mod:`repro.service.query`
  (fanned out per band on a sharded index), and migrate an existing
  flat index into size bands in place (``index shard``).

Query knobs are spelled under the canonical ``--query-*`` namespace
(``--query-prefilter``, ``--query-candidates``, ``--query-batch-size``,
``--query-max-wait``); the legacy flat spellings remain accepted as
aliases for one release.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.config import (
    QUERY_CANDIDATES,
    QUERY_PREFILTERS,
    SHARD_BAND_POLICIES,
    SIMILARITY_MEASURES,
    SimilarityConfig,
)
from repro.core.sketch import ESTIMATORS
from repro.runtime.codec import WIRE_CODECS
from repro.runtime.pipeline import PIPELINE_MODES
from repro.sparse.dispatch import KERNEL_POLICIES
from repro.genomics.phylogeny import tree_to_newick
from repro.genomics.pipeline import GenomeAtScale
from repro.runtime.engine import Machine
from repro.runtime.machine import laptop, stampede2_knl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="genome-at-scale",
        description=(
            "Distributed Jaccard genetic distances over FASTA samples "
            "(SimilarityAtScale on a simulated BSP machine)."
        ),
    )
    parser.add_argument(
        "inputs", nargs="+", type=Path,
        help="FASTA files, or a single directory of .fasta/.fa files",
    )
    parser.add_argument("-o", "--output", type=Path, required=True,
                        help="output directory")
    parser.add_argument("-k", type=int, default=31,
                        help="k-mer length (odd; default 31)")
    parser.add_argument("--min-count", type=int, default=1,
                        help="k-mer abundance threshold (default 1)")
    parser.add_argument("--machine", choices=["laptop", "stampede2"],
                        default="laptop", help="machine model preset")
    parser.add_argument("--nodes", type=int, default=1,
                        help="node count for the stampede2 preset")
    parser.add_argument("--ranks", type=int, default=4,
                        help="rank count for the laptop preset")
    parser.add_argument("--batches", type=int, default=None,
                        help="batch count (default: memory-driven)")
    parser.add_argument("--bit-width", type=int, default=64,
                        choices=[8, 16, 32, 64], help="bitmask width b")
    parser.add_argument(
        "--kernel-policy", choices=list(KERNEL_POLICIES), default="adaptive",
        help=(
            "local Gram kernel routing: adaptive picks per batch by "
            "post-filter density; the rest force one kernel"
        ),
    )
    parser.add_argument(
        "--pipeline", choices=list(PIPELINE_MODES), default="off",
        help=(
            "batch schedule: off = the paper's serial Listing 1 loop; "
            "double_buffer overlaps each batch's Gram accumulation with "
            "the next batch's read/filter/pack (results are identical)"
        ),
    )
    parser.add_argument(
        "--wire-codec", choices=list(WIRE_CODECS), default="raw",
        help=(
            "wire-format codec for distributed-Gram payloads: raw = the "
            "legacy format; varint/rle force one codec; adaptive picks "
            "per payload by modelled encoded size (results are identical "
            "under every choice; only modelled wire bytes change)"
        ),
    )
    parser.add_argument(
        "--estimator", choices=list(ESTIMATORS), default="exact",
        help=(
            "similarity estimator: exact = the paper's bit-matrix "
            "pipeline; minhash/bbit_minhash/hll ship per-sample "
            "sketches instead and estimate J with an analytic 95%% "
            "error bound (printed in the cost report)"
        ),
    )
    parser.add_argument(
        "--sketch-size", type=int, default=256,
        help=(
            "sketch budget per sample: bottom-s size (minhash), lane "
            "count (bbit_minhash), or register count (hll); the bound "
            "shrinks as 1/sqrt(size) (default 256)"
        ),
    )
    parser.add_argument(
        "--sketch-bits", type=int, default=8,
        help="bits kept per b-bit MinHash lane (default 8)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help=(
            "stream chunked FASTA straight into the engine (no sample "
            "store on disk; requires --min-count 1)"
        ),
    )
    parser.add_argument(
        "--chunk-bases", type=int, default=None,
        help="bases per streaming chunk (with --stream; default 1 MiB)",
    )
    parser.add_argument("--tree", choices=["nj", "upgma", "none"],
                        default="nj", help="phylogeny method")
    return parser


def _add_index_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--index", type=Path, required=True,
                        help="index store directory")
    parser.add_argument("-k", type=int, default=31,
                        help="k-mer length (odd; default 31)")
    parser.add_argument("--min-count", type=int, default=1,
                        help="k-mer abundance threshold (default 1)")
    parser.add_argument("--machine", choices=["laptop", "stampede2"],
                        default="laptop", help="machine model preset")
    parser.add_argument("--nodes", type=int, default=1,
                        help="node count for the stampede2 preset")
    parser.add_argument("--ranks", type=int, default=4,
                        help="rank count for the laptop preset")
    parser.add_argument(
        "--similarity", choices=list(SIMILARITY_MEASURES),
        default="jaccard",
        help=(
            "similarity measure the index serves: jaccard (default), "
            "weighted_jaccard (k-mer abundances kept through cleaning "
            "and scored as mass min/max), containment (asymmetric, "
            "one-sided pruning bound), or cosine (Ochiai); every "
            "measure's final scores are exact"
        ),
    )


def build_index_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="genome-at-scale index",
        description=(
            "Persistent similarity index: build, extend incrementally, "
            "and serve threshold/top-k queries (repro.service)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="create an index from FASTA samples"
    )
    build.add_argument(
        "inputs", nargs="+", type=Path,
        help="FASTA files, or a single directory of .fasta/.fa files",
    )
    _add_index_common(build)
    build.add_argument(
        "--wire-codec", choices=list(WIRE_CODECS), default="adaptive",
        help=(
            "codec policy of the stored shards and the border-block "
            "collectives (default adaptive)"
        ),
    )
    build.add_argument(
        "--sketch-size", type=int, default=256,
        help="stored sketch budget per genome (default 256)",
    )
    build.add_argument(
        "--sketch-bits", type=int, default=8,
        help="bits per stored b-bit MinHash lane (default 8)",
    )
    build.add_argument(
        "--shards", type=int, default=1,
        help=(
            "split the new index into this many size-banded shards "
            "(default 1 = the classic flat layout); threshold queries "
            "then consult only the bands their size-ratio window "
            "overlaps"
        ),
    )
    build.add_argument(
        "--band-policy", choices=list(SHARD_BAND_POLICIES),
        default="quantile",
        help=(
            "how the shard band edges are planned (with --shards; "
            "default quantile = equal-count bands over the sample "
            "sizes, best load balance)"
        ),
    )

    add = sub.add_parser(
        "add", help="incrementally add FASTA samples to an index"
    )
    add.add_argument(
        "inputs", nargs="+", type=Path,
        help="FASTA files, or a single directory of .fasta/.fa files",
    )
    _add_index_common(add)

    query = sub.add_parser(
        "query", help="threshold/top-k query of one sample against an index"
    )
    query.add_argument(
        "inputs", nargs="*", type=Path,
        help="the query FASTA file (omit when using --batch-file)",
    )
    _add_index_common(query)
    query.add_argument(
        "--batch-file", type=Path, default=None,
        help=(
            "file listing query FASTA paths (one per line, # comments "
            "allowed); all queries run through the batched path (one "
            "size-sorted window + one rectangular popcount block per "
            "batch) and results match per-query runs exactly"
        ),
    )
    query.add_argument(
        "--query-batch-size", "--batch-size", dest="query_batch_size",
        type=int, default=None,
        help=(
            "queries coalesced per batch (default: config, 32; "
            "--batch-size is the deprecated alias)"
        ),
    )
    query.add_argument(
        "--query-max-wait", "--max-wait", dest="query_max_wait",
        type=float, default=None,
        help=(
            "batch admission wait in seconds (default: config, 0.01; "
            "--max-wait is the deprecated alias)"
        ),
    )
    query.add_argument(
        "--threshold", type=float, default=None,
        help="return every genome with J >= threshold",
    )
    query.add_argument(
        "--top-k", type=int, default=None,
        help="return the k most similar genomes",
    )
    query.add_argument(
        "--query-prefilter", "--prefilter", dest="query_prefilter",
        choices=list(QUERY_PREFILTERS), default="cascade",
        help=(
            "cascade depth: off = brute-force exact; size = size-ratio "
            "bound only; cascade (default) adds the conservative sketch "
            "prefilter before exact verification (--prefilter is the "
            "deprecated alias)"
        ),
    )
    query.add_argument(
        "--query-candidates", "--candidates", dest="query_candidates",
        choices=list(QUERY_CANDIDATES), default="scan",
        help=(
            "candidate generator: scan (default) = every stored genome "
            "enters the cascade; lsh = probe the store's banded "
            "MinHash-LSH buckets first (sub-linear, approximate "
            "recall bounded by the band plan); lsh_exact = probe the "
            "buckets but keep the full scan (exact answers, LSH "
            "recall auditable from the counters; --candidates is the "
            "deprecated alias)"
        ),
    )
    query.add_argument(
        "--estimator", choices=list(ESTIMATORS), default="exact",
        help=(
            "stored sketch family the prefilter estimates with (exact = "
            "the store's first family; the final similarities are exact "
            "in every case)"
        ),
    )
    query.add_argument(
        "--json", type=Path, default=None,
        help="also write the matches and cascade stats as JSON",
    )

    shard = sub.add_parser(
        "shard",
        help=(
            "migrate an existing flat index into size-banded shards "
            "in place (queries before and after are identical)"
        ),
    )
    shard.add_argument("--index", type=Path, required=True,
                       help="index store directory")
    shard.add_argument(
        "--shards", type=int, required=True,
        help="number of size-banded shards to split the index into",
    )
    shard.add_argument(
        "--band-policy", choices=list(SHARD_BAND_POLICIES),
        default="quantile",
        help=(
            "how the band edges are planned over the stored sizes "
            "(default quantile = equal-count bands)"
        ),
    )
    return parser


def _index_tool(args: argparse.Namespace, **config_overrides) -> GenomeAtScale:
    if args.machine == "stampede2":
        spec = stampede2_knl(args.nodes)
    else:
        spec = laptop(args.ranks)
    if "similarity" not in config_overrides:
        config_overrides["similarity"] = getattr(
            args, "similarity", "jaccard"
        )
    config = SimilarityConfig(**config_overrides)
    return GenomeAtScale(
        machine=Machine(spec), config=config, k=args.k,
        min_count=args.min_count,
    )


def index_main(argv: list[str]) -> int:
    args = build_index_parser().parse_args(argv)
    inputs = getattr(args, "inputs", None)
    fasta_paths = collect_inputs(inputs) if inputs else []
    if args.command == "shard":
        from repro.service import shard_store

        store = shard_store(
            args.index, args.shards, band_policy=args.band_policy
        )
        print(store.summary())
        print(
            f"\nsharded {args.index} into {store.n_shards} size "
            f"band(s) [{args.band_policy}]; queries are unchanged"
        )
        return 0
    if args.command == "build":
        tool = _index_tool(
            args, wire_codec=args.wire_codec,
            sketch_size=args.sketch_size, sketch_bits=args.sketch_bits,
            store_shards=args.shards, shard_band_policy=args.band_policy,
        )
        store = tool.build_index(fasta_paths, args.index)
        print(store.summary())
        print(tool.machine.ledger.report())
        print(f"\nindexed {store.n_genomes} sample(s) into {args.index}")
        return 0
    if args.command == "add":
        tool = _index_tool(args)
        report = tool.extend_index(args.index, fasta_paths)
        print(
            f"added {len(report.added)} sample(s) "
            f"({', '.join(report.added)}): index now holds "
            f"{report.n_after} genome(s); border block "
            f"{report.border_shape[0]}x{report.border_shape[1]} over "
            f"{report.batches} batch(es), simulated "
            f"{report.simulated_seconds:.6f}s"
        )
        return 0
    # query
    if args.threshold is None and args.top_k is None:
        raise SystemExit("index query requires --threshold and/or --top-k")
    overrides = dict(
        query_prefilter=args.query_prefilter, estimator=args.estimator,
        query_candidates=args.query_candidates,
    )
    if args.query_batch_size is not None:
        overrides["query_batch_size"] = args.query_batch_size
    if args.query_max_wait is not None:
        overrides["query_max_wait"] = args.query_max_wait
    tool = _index_tool(args, **overrides)
    if args.batch_file is not None:
        if fasta_paths:
            raise SystemExit(
                "index query takes either positional FASTA files or "
                "--batch-file, not both"
            )
        batch_paths = _read_batch_file(args.batch_file)
        results = tool.query_index_batch(
            args.index, batch_paths,
            threshold=args.threshold, top_k=args.top_k,
        )
        for path, result in zip(batch_paths, results):
            print(f"== {path} ==")
            print(result.summary())
            label = _SCORE_LABELS.get(result.similarity_measure, "sim")
            for m in result.matches:
                print(f"  {m.name:<24} {label} = {m.similarity:.6f}")
            if not result.matches:
                print("  (no genome qualified)")
        if args.json is not None:
            payload = {
                "batched": True,
                "n_queries": len(results),
                "queries": [
                    _query_payload(path, result)
                    for path, result in zip(batch_paths, results)
                ],
            }
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(json.dumps(payload, indent=2) + "\n")
        return 0
    if len(fasta_paths) != 1:
        raise SystemExit(
            f"index query takes exactly one query FASTA file, got "
            f"{len(fasta_paths)} (pass a single file, not a directory, "
            f"or use --batch-file for many)"
        )
    result = tool.query_index(
        args.index, fasta_paths[0],
        threshold=args.threshold, top_k=args.top_k,
    )
    print(result.summary())
    label = _SCORE_LABELS.get(result.similarity_measure, "sim")
    for m in result.matches:
        print(f"  {m.name:<24} {label} = {m.similarity:.6f}")
    if not result.matches:
        print("  (no genome qualified)")
    if args.json is not None:
        payload = _query_payload(fasta_paths[0], result)
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
    return 0


#: Score label per measure in the human-readable match listing.
_SCORE_LABELS = {
    "jaccard": "J",
    "weighted_jaccard": "Jw",
    "containment": "C",
    "cosine": "cos",
}


def _read_batch_file(path: Path) -> list[Path]:
    if not path.exists():
        raise SystemExit(f"missing --batch-file: {path}")
    out = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        p = Path(line)
        if not p.exists():
            raise SystemExit(f"missing query FASTA from {path}: {p}")
        out.append(p)
    if not out:
        raise SystemExit(f"--batch-file {path} lists no query FASTA files")
    return out


def _query_payload(path: Path, result) -> dict:
    return {
        "query": str(path),
        "threshold": result.threshold,
        "top_k": result.top_k,
        "prefilter": result.prefilter,
        "estimator": result.estimator,
        "candidates": result.candidates,
        "similarity": result.similarity_measure,
        "bound_type": result.bound_type,
        "error_bound": result.error_bound,
        "n_candidates": result.n_candidates,
        "n_after_lsh": result.n_after_lsh,
        "n_after_size": result.n_after_size,
        "n_verified": result.n_verified,
        "pruning_ratio": result.pruning_ratio,
        "store_version": result.store_version,
        "batch_size": result.batch_size,
        "matches": [
            {"name": m.name, "index": m.index,
             "similarity": m.similarity}
            for m in result.matches
        ],
    }


def collect_inputs(inputs: list[Path]) -> list[Path]:
    if len(inputs) == 1 and inputs[0].is_dir():
        found = sorted(
            p for p in inputs[0].iterdir()
            if p.suffix in (".fasta", ".fa", ".fna")
        )
        if not found:
            raise SystemExit(f"no FASTA files found in {inputs[0]}")
        return found
    missing = [p for p in inputs if not p.exists()]
    if missing:
        raise SystemExit(f"missing input files: {missing}")
    return inputs


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Dispatch to the index subcommands only when the second token is
    # one of them, so a FASTA file or directory literally named
    # "index" still reaches the batch parser.
    if argv[:1] == ["index"] and (
        len(argv) == 1
        or argv[1] in ("build", "add", "query", "shard", "-h", "--help")
    ):
        return index_main(argv[1:])
    args = build_parser().parse_args(argv)
    fasta_paths = collect_inputs(args.inputs)
    if args.machine == "stampede2":
        spec = stampede2_knl(args.nodes)
    else:
        spec = laptop(args.ranks)
    machine = Machine(spec)
    config = SimilarityConfig(
        batch_count=args.batches, bit_width=args.bit_width,
        kernel_policy=args.kernel_policy, pipeline=args.pipeline,
        wire_codec=args.wire_codec, estimator=args.estimator,
        sketch_size=args.sketch_size, sketch_bits=args.sketch_bits,
    )
    tool = GenomeAtScale(
        machine=machine, config=config, k=args.k, min_count=args.min_count
    )
    args.output.mkdir(parents=True, exist_ok=True)
    if args.stream:
        if args.min_count != 1:
            raise SystemExit("--stream requires --min-count 1")
        result = tool.run_streaming(fasta_paths, chunk_bases=args.chunk_bases)
    else:
        result = tool.run_fasta(fasta_paths, args.output)

    np.save(args.output / "similarity.npy", result.similarity)
    np.save(args.output / "distance.npy", result.distance)
    result.to_phylip(args.output / "distance.phylip")
    (args.output / "cost_report.txt").write_text(
        result.similarity_result.summary() + "\n"
    )
    if args.tree != "none":
        tree = result.tree(method=args.tree)
        (args.output / f"tree_{args.tree}.nwk").write_text(
            tree_to_newick(tree) + "\n"
        )
    print(result.similarity_result.summary())
    print(f"\nwrote results for {result.n_samples} samples to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
