"""Command-line interface: ``genome-at-scale``.

Runs the full pipeline on a directory of FASTA files against a
configurable simulated machine and writes the similarity/distance
matrices, a PHYLIP export, a Newick tree, and the BSP cost report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.config import SimilarityConfig
from repro.core.sketch import ESTIMATORS
from repro.runtime.codec import WIRE_CODECS
from repro.runtime.pipeline import PIPELINE_MODES
from repro.sparse.dispatch import KERNEL_POLICIES
from repro.genomics.phylogeny import tree_to_newick
from repro.genomics.pipeline import GenomeAtScale
from repro.runtime.engine import Machine
from repro.runtime.machine import laptop, stampede2_knl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="genome-at-scale",
        description=(
            "Distributed Jaccard genetic distances over FASTA samples "
            "(SimilarityAtScale on a simulated BSP machine)."
        ),
    )
    parser.add_argument(
        "inputs", nargs="+", type=Path,
        help="FASTA files, or a single directory of .fasta/.fa files",
    )
    parser.add_argument("-o", "--output", type=Path, required=True,
                        help="output directory")
    parser.add_argument("-k", type=int, default=31,
                        help="k-mer length (odd; default 31)")
    parser.add_argument("--min-count", type=int, default=1,
                        help="k-mer abundance threshold (default 1)")
    parser.add_argument("--machine", choices=["laptop", "stampede2"],
                        default="laptop", help="machine model preset")
    parser.add_argument("--nodes", type=int, default=1,
                        help="node count for the stampede2 preset")
    parser.add_argument("--ranks", type=int, default=4,
                        help="rank count for the laptop preset")
    parser.add_argument("--batches", type=int, default=None,
                        help="batch count (default: memory-driven)")
    parser.add_argument("--bit-width", type=int, default=64,
                        choices=[8, 16, 32, 64], help="bitmask width b")
    parser.add_argument(
        "--kernel-policy", choices=list(KERNEL_POLICIES), default="adaptive",
        help=(
            "local Gram kernel routing: adaptive picks per batch by "
            "post-filter density; the rest force one kernel"
        ),
    )
    parser.add_argument(
        "--pipeline", choices=list(PIPELINE_MODES), default="off",
        help=(
            "batch schedule: off = the paper's serial Listing 1 loop; "
            "double_buffer overlaps each batch's Gram accumulation with "
            "the next batch's read/filter/pack (results are identical)"
        ),
    )
    parser.add_argument(
        "--wire-codec", choices=list(WIRE_CODECS), default="raw",
        help=(
            "wire-format codec for distributed-Gram payloads: raw = the "
            "legacy format; varint/rle force one codec; adaptive picks "
            "per payload by modelled encoded size (results are identical "
            "under every choice; only modelled wire bytes change)"
        ),
    )
    parser.add_argument(
        "--estimator", choices=list(ESTIMATORS), default="exact",
        help=(
            "similarity estimator: exact = the paper's bit-matrix "
            "pipeline; minhash/bbit_minhash/hll ship per-sample "
            "sketches instead and estimate J with an analytic 95%% "
            "error bound (printed in the cost report)"
        ),
    )
    parser.add_argument(
        "--sketch-size", type=int, default=256,
        help=(
            "sketch budget per sample: bottom-s size (minhash), lane "
            "count (bbit_minhash), or register count (hll); the bound "
            "shrinks as 1/sqrt(size) (default 256)"
        ),
    )
    parser.add_argument(
        "--sketch-bits", type=int, default=8,
        help="bits kept per b-bit MinHash lane (default 8)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help=(
            "stream chunked FASTA straight into the engine (no sample "
            "store on disk; requires --min-count 1)"
        ),
    )
    parser.add_argument(
        "--chunk-bases", type=int, default=None,
        help="bases per streaming chunk (with --stream; default 1 MiB)",
    )
    parser.add_argument("--tree", choices=["nj", "upgma", "none"],
                        default="nj", help="phylogeny method")
    return parser


def collect_inputs(inputs: list[Path]) -> list[Path]:
    if len(inputs) == 1 and inputs[0].is_dir():
        found = sorted(
            p for p in inputs[0].iterdir()
            if p.suffix in (".fasta", ".fa", ".fna")
        )
        if not found:
            raise SystemExit(f"no FASTA files found in {inputs[0]}")
        return found
    missing = [p for p in inputs if not p.exists()]
    if missing:
        raise SystemExit(f"missing input files: {missing}")
    return inputs


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    fasta_paths = collect_inputs(args.inputs)
    if args.machine == "stampede2":
        spec = stampede2_knl(args.nodes)
    else:
        spec = laptop(args.ranks)
    machine = Machine(spec)
    config = SimilarityConfig(
        batch_count=args.batches, bit_width=args.bit_width,
        kernel_policy=args.kernel_policy, pipeline=args.pipeline,
        wire_codec=args.wire_codec, estimator=args.estimator,
        sketch_size=args.sketch_size, sketch_bits=args.sketch_bits,
    )
    tool = GenomeAtScale(
        machine=machine, config=config, k=args.k, min_count=args.min_count
    )
    args.output.mkdir(parents=True, exist_ok=True)
    if args.stream:
        if args.min_count != 1:
            raise SystemExit("--stream requires --min-count 1")
        result = tool.run_streaming(fasta_paths, chunk_bases=args.chunk_bases)
    else:
        result = tool.run_fasta(fasta_paths, args.output)

    np.save(args.output / "similarity.npy", result.similarity)
    np.save(args.output / "distance.npy", result.distance)
    result.to_phylip(args.output / "distance.phylip")
    (args.output / "cost_report.txt").write_text(
        result.similarity_result.summary() + "\n"
    )
    if args.tree != "none":
        tree = result.tree(method=args.tree)
        (args.output / f"tree_{args.tree}.nwk").write_text(
            tree_to_newick(tree) + "\n"
        )
    print(result.similarity_result.summary())
    print(f"\nwrote results for {result.n_samples} samples to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
