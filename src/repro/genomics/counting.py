"""k-mer abundance counting and noise thresholds.

Raw high-throughput reads contain sequencing errors; an error in one
read produces k spurious k-mers that appear once (or very few times)
across the sample.  Both evaluation datasets were cleaned this way
(§V-A2): "raw sequences were preprocessed to remove rare (considered
noise) k-mers.  Minimum k-mer count thresholds were set based on the
total sizes of the raw sequencing read sets" (the Kingsford/SBT rule),
and BIGSI "considered longer contiguous stretches of k-mers to
determine k-mer count thresholds".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genomics.kmer import canonical_kmers, encode_kmers


def count_kmers(
    sequences, k: int, canonical: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Count k-mer occurrences across a sample's sequences.

    Returns ``(codes, counts)`` sorted by code.
    """
    parts = []
    for seq in sequences:
        text = getattr(seq, "sequence", seq)
        kmers = canonical_kmers(text, k) if canonical else encode_kmers(text, k)
        if kmers.size:
            parts.append(kmers)
    if not parts:
        z = np.empty(0, dtype=np.int64)
        return z, z.copy()
    merged = np.concatenate(parts)
    return np.unique(merged, return_counts=True)


def kingsford_threshold(total_bases: int) -> int:
    """The SBT-style minimum-count rule, keyed on raw sample size.

    Following Solomon & Kingsford's preprocessing [73]: small samples
    keep everything; progressively larger read sets require counts of
    at least 3, 7, 20, 50.
    """
    if total_bases < 0:
        raise ValueError(f"total_bases must be non-negative, got {total_bases}")
    gig = 1e9
    if total_bases < 0.5 * gig:
        return 1
    if total_bases < 1.0 * gig:
        return 3
    if total_bases < 3.0 * gig:
        return 7
    if total_bases < 10.0 * gig:
        return 20
    return 50


@dataclass(frozen=True)
class CleaningReport:
    """What abundance filtering removed from one sample."""

    threshold: int
    kmers_before: int
    kmers_after: int

    @property
    def removed_fraction(self) -> float:
        if self.kmers_before == 0:
            return 0.0
        return 1.0 - self.kmers_after / self.kmers_before


def clean_kmers(
    codes: np.ndarray, counts: np.ndarray, min_count: int
) -> tuple[np.ndarray, CleaningReport]:
    """Drop k-mers with abundance below ``min_count``."""
    if min_count < 1:
        raise ValueError(f"min_count must be >= 1, got {min_count}")
    if codes.shape != counts.shape:
        raise ValueError("codes and counts must align")
    keep = counts >= min_count
    kept = codes[keep]
    return kept, CleaningReport(
        threshold=min_count,
        kmers_before=int(codes.size),
        kmers_after=int(kept.size),
    )


def clean_sample(
    sequences, k: int, min_count: int | None = None, canonical: bool = True
) -> tuple[np.ndarray, CleaningReport]:
    """Count and threshold a sample's k-mers in one step.

    ``min_count=None`` applies :func:`kingsford_threshold` on the
    sample's total base count.
    """
    codes, _, report = clean_sample_counts(
        sequences, k, min_count=min_count, canonical=canonical
    )
    return codes, report


def clean_sample_counts(
    sequences, k: int, min_count: int | None = None, canonical: bool = True
) -> tuple[np.ndarray, np.ndarray, CleaningReport]:
    """Like :func:`clean_sample`, but keeps the surviving abundances.

    Returns ``(codes, counts, report)`` with ``counts`` aligned to the
    kept codes — the input of the weighted-Jaccard index path
    (``similarity="weighted_jaccard"``), where each sample's k-mer
    multiplicities feed the min/max mass accumulation instead of being
    discarded after cleaning.
    """
    codes, counts = count_kmers(sequences, k, canonical)
    if min_count is None:
        total_bases = sum(
            len(getattr(seq, "sequence", seq)) for seq in sequences
        )
        min_count = kingsford_threshold(total_bases)
    if min_count < 1:
        raise ValueError(f"min_count must be >= 1, got {min_count}")
    keep = counts >= min_count
    kept, kept_counts = codes[keep], counts[keep]
    report = CleaningReport(
        threshold=min_count,
        kmers_before=int(codes.size),
        kmers_after=int(kept.size),
    )
    return kept, kept_counts, report
