"""The on-disk sample representation of GenomeAtScale.

"GenomeAtScale includes infrastructure to produce files with a sorted
numerical representation for each data sample.  Each processor is
responsible for reading in a subset of these files, scanning through one
batch at a time." (§IV)

A :class:`SampleStore` is a directory of ``.npy`` files (one sorted
int64 k-mer-code array per sample) plus a small JSON manifest recording
``k``, canonicalization, and the sample names.  It plugs directly into
the core pipeline through :class:`~repro.core.indicator.FileSource`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.indicator import FileSource
from repro.genomics.kmer import kmer_space_size

MANIFEST_NAME = "manifest.json"


@dataclass
class SampleStore:
    """A directory of sorted numeric sample files."""

    root: Path
    k: int
    canonical: bool
    names: list[str]

    @classmethod
    def create(
        cls, root: str | Path, k: int, canonical: bool = True
    ) -> "SampleStore":
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        store = cls(root=root, k=k, canonical=canonical, names=[])
        store._write_manifest()
        return store

    @classmethod
    def open(cls, root: str | Path) -> "SampleStore":
        root = Path(root)
        manifest = root / MANIFEST_NAME
        if not manifest.exists():
            raise FileNotFoundError(f"no sample store at {root}")
        meta = json.loads(manifest.read_text())
        return cls(
            root=root,
            k=int(meta["k"]),
            canonical=bool(meta["canonical"]),
            names=list(meta["names"]),
        )

    def _write_manifest(self) -> None:
        payload = {"k": self.k, "canonical": self.canonical, "names": self.names}
        (self.root / MANIFEST_NAME).write_text(json.dumps(payload, indent=2))

    def _path(self, name: str) -> Path:
        return self.root / f"{name}.npy"

    # ---- content ------------------------------------------------------

    def add_sample(self, name: str, kmer_codes: np.ndarray) -> None:
        """Store one sample's sorted, deduplicated k-mer codes."""
        if name in self.names:
            raise ValueError(f"sample {name!r} already present")
        codes = np.unique(np.asarray(kmer_codes, dtype=np.int64))
        if codes.size and (codes[0] < 0 or codes[-1] >= kmer_space_size(self.k)):
            raise ValueError(
                f"sample {name!r} has codes outside [0, 4^{self.k})"
            )
        np.save(self._path(name), codes)
        self.names.append(name)
        self._write_manifest()

    def load_sample(self, name: str) -> np.ndarray:
        if name not in self.names:
            raise KeyError(f"unknown sample {name!r}")
        return np.load(self._path(name))

    @property
    def n_samples(self) -> int:
        return len(self.names)

    @property
    def m(self) -> int:
        """Attribute-space size ``4^k`` of the indicator matrix."""
        return kmer_space_size(self.k)

    def total_bytes(self) -> int:
        """On-disk footprint of all sample files."""
        return sum(self._path(n).stat().st_size for n in self.names)

    def as_source(self) -> FileSource:
        """A batched indicator source over this store's files."""
        if not self.names:
            raise ValueError("sample store is empty")
        return FileSource([self._path(n) for n in self.names], m=self.m)
