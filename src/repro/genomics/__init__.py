"""GenomeAtScale — distributed genetic distance computation.

The genomics tool of §IV: wraps SimilarityAtScale with everything needed
to go from sequencing data to a matrix of Jaccard genetic distances
(paper Fig. 1, parts I and III):

* :mod:`~repro.genomics.sequence` — DNA alphabet, reverse complements,
  sequence records;
* :mod:`~repro.genomics.fasta` — FASTA/FASTQ reading and writing
  (the standard input format, §V-A2);
* :mod:`~repro.genomics.kmer` — 2-bit k-mer encoding, canonical k-mers,
  ambiguous-base handling;
* :mod:`~repro.genomics.counting` — k-mer abundance counting and the
  noise thresholds used to clean raw reads (§V-A2);
* :mod:`~repro.genomics.samples` — the sorted numeric per-sample
  representation GenomeAtScale materializes on disk (§IV);
* :mod:`~repro.genomics.stream` — streaming ingestion: chunked FASTA
  -> k-mer batches as an iterator, and a batched indicator source that
  never materializes whole sequence files;
* :mod:`~repro.genomics.pipeline` — the end-to-end tool;
* :mod:`~repro.genomics.simulate` — synthetic cohorts: phylogeny-aware
  genome evolution, read simulation with errors, and generators
  calibrated to the Kingsford and BIGSI dataset regimes (§V-A2);
* :mod:`~repro.genomics.phylogeny` — neighbor-joining / UPGMA tree
  construction from distance matrices (Fig. 1, part ¼/Ł).
"""

from repro.genomics.fasta import read_fasta, read_fastq, write_fasta
from repro.genomics.kmer import (
    canonical_kmers,
    decode_kmer,
    encode_kmers,
    kmer_set,
)
from repro.genomics.phylogeny import neighbor_joining, upgma
from repro.genomics.pipeline import GenomeAtScale, GenomeAtScaleResult
from repro.genomics.samples import SampleStore
from repro.genomics.sequence import SequenceRecord, reverse_complement
from repro.genomics.stream import StreamingKmerSource, stream_kmer_set
from repro.genomics.simulate import (
    CohortSpec,
    bigsi_like,
    kingsford_like,
    simulate_cohort,
)

__all__ = [
    "read_fasta",
    "read_fastq",
    "write_fasta",
    "canonical_kmers",
    "decode_kmer",
    "encode_kmers",
    "kmer_set",
    "neighbor_joining",
    "upgma",
    "GenomeAtScale",
    "GenomeAtScaleResult",
    "SampleStore",
    "SequenceRecord",
    "reverse_complement",
    "StreamingKmerSource",
    "stream_kmer_set",
    "CohortSpec",
    "bigsi_like",
    "kingsford_like",
    "simulate_cohort",
]
