#!/usr/bin/env python3
"""Docs checker: keep README/docs code blocks and links from rotting.

Five checks over ``README.md`` and every ``docs/*.md``:

1. **doctest** — fenced ``python`` blocks containing ``>>>`` prompts are
   executed with :mod:`doctest` (with ``src`` on the path), so every
   interactive example in the docs keeps producing exactly the output
   it shows;
2. **syntax** — remaining ``python`` blocks must at least compile
   (examples with placeholder paths or big workloads are not executed,
   but a renamed function or argument still fails the build);
3. **links** — relative markdown links must point at files that exist
   in the repository (external http(s)/mailto links are left alone);
4. **wiki links** — ``[[target]]``-style relative links must resolve to
   an existing file (``target`` or ``target.md``);
5. **orphans** — every ``docs/*.md`` page must be reachable from the
   documentation hubs (linked from ``README.md`` or
   ``docs/architecture.md``), so new pages cannot land unlisted.

Run:  python tools/check_docs.py            # exit 1 on any failure
      python tools/check_docs.py --verbose  # list every check
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

FENCE_RE = re.compile(
    r"^```(?P<lang>[A-Za-z0-9_+-]*)[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)
# [text](target) — excluding images' alt text is irrelevant, same syntax.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# [[target]] wiki-style links (with optional #anchor / |label parts).
WIKILINK_RE = re.compile(r"\[\[([^\]]+?)\]\]")

#: Pages every docs/*.md file must be linked from (relative to root).
HUB_PAGES = ("README.md", "docs/architecture.md")


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def _wikilink_target(raw: str) -> str:
    """Strip ``|label`` and ``#anchor`` decorations from a wiki link."""
    return raw.split("|")[0].split("#")[0].strip()


def check_python_block(
    path: Path, index: int, body: str, errors: list[str], verbose: bool
) -> None:
    if ">>>" in body:
        parser = doctest.DocTestParser()
        runner = doctest.DocTestRunner(verbose=False)
        test = doctest.DocTest(
            examples=parser.get_examples(body),
            globs={}, name=f"{path.name}[block {index}]",
            filename=str(path), lineno=0, docstring=body,
        )
        out: list[str] = []
        runner.run(test, out=out.append)
        if runner.failures:
            errors.append(
                f"{path.relative_to(REPO_ROOT)} block {index}: "
                f"{runner.failures} doctest failure(s)\n"
                + "".join(out)
            )
        elif verbose:
            print(f"  doctest ok: {path.name} block {index} "
                  f"({len(test.examples)} example(s))")
    else:
        try:
            compile(body, f"{path.name}[block {index}]", "exec")
            if verbose:
                print(f"  syntax ok: {path.name} block {index}")
        except SyntaxError as exc:
            errors.append(
                f"{path.relative_to(REPO_ROOT)} block {index}: "
                f"syntax error: {exc}"
            )


def check_links(
    path: Path, text: str, errors: list[str], verbose: bool,
    root: Path = REPO_ROOT,
) -> None:
    # Strip fenced code first so shell snippets can't look like links.
    prose = FENCE_RE.sub("", text)
    for target in LINK_RE.findall(prose):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(root)}: broken link -> {target}"
            )
        elif verbose:
            print(f"  link ok: {path.name} -> {target}")


def check_wikilinks(
    path: Path, text: str, errors: list[str], verbose: bool,
    root: Path = REPO_ROOT,
) -> None:
    """``[[target]]`` links must name an existing relative file."""
    prose = FENCE_RE.sub("", text)
    for raw in WIKILINK_RE.findall(prose):
        target = _wikilink_target(raw)
        if not target:
            continue
        base = path.parent / target
        if base.exists() or (path.parent / (target + ".md")).exists():
            if verbose:
                print(f"  wikilink ok: {path.name} -> {target}")
        else:
            errors.append(
                f"{path.relative_to(root)}: dead wiki link -> [[{raw}]]"
            )


def _linked_targets(path: Path) -> set[Path]:
    """Every local file a page links to (markdown + wiki syntax)."""
    text = path.read_text()
    prose = FENCE_RE.sub("", text)
    targets: set[Path] = set()
    for target in LINK_RE.findall(prose):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        targets.add((path.parent / target.split("#")[0]).resolve())
    for raw in WIKILINK_RE.findall(prose):
        target = _wikilink_target(raw)
        if not target:
            continue
        base = path.parent / target
        targets.add(base.resolve())
        targets.add((path.parent / (target + ".md")).resolve())
    return targets


def check_orphans(
    errors: list[str], verbose: bool, root: Path = REPO_ROOT
) -> None:
    """Every docs/*.md page must be linked from a hub page."""
    linked: set[Path] = set()
    hubs = []
    for rel in HUB_PAGES:
        hub = root / rel
        if hub.exists():
            hubs.append(rel)
            linked |= _linked_targets(hub)
    for page in sorted((root / "docs").glob("*.md")):
        if page.resolve() in linked:
            if verbose:
                print(f"  reachable: {page.relative_to(root)}")
        else:
            errors.append(
                f"{page.relative_to(root)}: orphan page (not linked from "
                f"{' or '.join(hubs)})"
            )


def run_checks(verbose: bool = False, root: Path = REPO_ROOT) -> list[str]:
    errors: list[str] = []
    for path in doc_files(root):
        text = path.read_text()
        if verbose:
            print(f"{path.relative_to(root)}:")
        for index, match in enumerate(FENCE_RE.finditer(text)):
            if match.group("lang").lower() in ("python", "py"):
                check_python_block(
                    path, index, match.group("body"), errors, verbose
                )
        check_links(path, text, errors, verbose, root)
        check_wikilinks(path, text, errors, verbose, root)
    check_orphans(errors, verbose, root)
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true",
                        help="list every passing check")
    args = parser.parse_args(argv)
    errors = run_checks(verbose=args.verbose)
    n_files = len(doc_files())
    if errors:
        print(f"\n{len(errors)} docs problem(s) in {n_files} file(s):")
        for err in errors:
            print(f"- {err}")
        return 1
    print(f"docs ok: {n_files} file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
