#!/usr/bin/env python3
"""Benchmark regression gate: compare BENCH_*.json against floors.

Each benchmark trajectory file (``BENCH_kernels.json``,
``BENCH_pipeline.json``, ``BENCH_wire.json``, ``BENCH_sketch.json``,
``BENCH_query.json``, ``BENCH_service.json``, ``BENCH_lsh.json``,
``BENCH_shards.json``, ``BENCH_semantics.json``)
records one summary per workload per run.  This gate takes the *latest*
run with the requested label (``full`` for the committed trajectories,
``smoke`` for the CI harness run) and checks every metric named in
``benchmarks/thresholds.json`` against its committed floor:

* plain numeric thresholds are **floors** — the measured value must be
  greater than or equal (speedups, compression ratios);
* thresholds whose key ends in ``_max`` are **ceilings** for the metric
  without the suffix (error budgets);
* boolean thresholds must match exactly (bit-exactness flags).

A missing file, run label, workload, or metric is a failure: the gate
exists so a refactor cannot silently drop a benchmark section.

Run:  python tools/check_bench.py --label smoke \\
          --kernels /tmp/bench_smoke.json \\
          --pipeline /tmp/bench_pipeline_smoke.json \\
          --wire /tmp/bench_wire_smoke.json \\
          --sketch /tmp/bench_sketch_smoke.json \\
          --query /tmp/bench_query_smoke.json
      python tools/check_bench.py --label full   # committed trajectories
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_THRESHOLDS = REPO_ROOT / "benchmarks" / "thresholds.json"

#: Gate sections mapped to their default (committed) trajectory files.
SECTIONS = {
    "kernels": REPO_ROOT / "BENCH_kernels.json",
    "pipeline": REPO_ROOT / "BENCH_pipeline.json",
    "wire": REPO_ROOT / "BENCH_wire.json",
    "sketch": REPO_ROOT / "BENCH_sketch.json",
    "query": REPO_ROOT / "BENCH_query.json",
    "service": REPO_ROOT / "BENCH_service.json",
    "lsh": REPO_ROOT / "BENCH_lsh.json",
    "shards": REPO_ROOT / "BENCH_shards.json",
    "semantics": REPO_ROOT / "BENCH_semantics.json",
}


def latest_run(data: dict, label: str) -> dict | None:
    """The most recent run entry with the given label, if any."""
    runs = [r for r in data.get("runs", []) if r.get("label") == label]
    return runs[-1] if runs else None


def check_workload(
    section: str,
    workload: str,
    summary: dict,
    floors: dict,
    problems: list[str],
    verbose: bool = False,
) -> None:
    """Compare one workload summary against its thresholds."""
    for key, floor in floors.items():
        ceiling = key.endswith("_max")
        metric = key[:-4] if ceiling else key
        if metric not in summary:
            problems.append(
                f"{section}/{workload}: metric {metric!r} missing "
                f"from the run summary"
            )
            continue
        value = summary[metric]
        if isinstance(floor, bool):
            ok = value == floor
            relation = f"== {floor}"
        elif ceiling:
            ok = value <= floor
            relation = f"<= {floor}"
        else:
            ok = value >= floor
            relation = f">= {floor}"
        if not ok:
            problems.append(
                f"{section}/{workload}: {metric} = {value} "
                f"violates the committed floor ({relation})"
            )
        elif verbose:
            print(f"  ok: {section}/{workload}: {metric} = {value} {relation}")


def check_section(
    section: str,
    path: Path,
    label: str,
    thresholds: dict,
    problems: list[str],
    verbose: bool = False,
) -> None:
    """Gate one trajectory file against one thresholds section."""
    floors_by_workload = thresholds.get(section, {})
    if not floors_by_workload:
        if verbose:
            print(f"  {section}: no thresholds committed, skipped")
        return
    if not path.exists():
        problems.append(f"{section}: trajectory file {path} does not exist")
        return
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        problems.append(f"{section}: {path} is not valid JSON ({exc})")
        return
    run = latest_run(data, label)
    if run is None:
        problems.append(f"{section}: {path} holds no run labelled {label!r}")
        return
    for workload, floors in floors_by_workload.items():
        wl = run.get("workloads", {}).get(workload)
        if wl is None or "summary" not in wl:
            problems.append(
                f"{section}/{workload}: workload missing from the "
                f"latest {label!r} run"
            )
            continue
        check_workload(section, workload, wl["summary"], floors, problems, verbose)


def run_gate(
    label: str,
    paths: dict[str, Path],
    thresholds_path: Path = DEFAULT_THRESHOLDS,
    verbose: bool = False,
) -> list[str]:
    """Run the whole gate; returns the list of regressions (empty = ok)."""
    problems: list[str] = []
    try:
        thresholds_doc = json.loads(thresholds_path.read_text())
    except FileNotFoundError:
        return [f"thresholds file {thresholds_path} does not exist"]
    except json.JSONDecodeError as exc:
        return [f"{thresholds_path} is not valid JSON ({exc})"]
    thresholds = thresholds_doc.get("labels", {}).get(label)
    if thresholds is None:
        return [f"{thresholds_path} commits no thresholds for label {label!r}"]
    for section, path in paths.items():
        check_section(section, path, label, thresholds, problems, verbose)
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        choices=["full", "smoke"],
        default="full",
        help="which run label to gate (default: full, the committed runs)",
    )
    parser.add_argument(
        "--thresholds",
        type=Path,
        default=DEFAULT_THRESHOLDS,
        help=f"thresholds file (default {DEFAULT_THRESHOLDS})",
    )
    for section, default in SECTIONS.items():
        parser.add_argument(
            f"--{section}",
            type=Path,
            default=default,
            help=f"{section} trajectory file (default {default})",
        )
    parser.add_argument(
        "--verbose", action="store_true", help="list every passing check"
    )
    args = parser.parse_args(argv)
    paths = {section: getattr(args, section) for section in SECTIONS}
    problems = run_gate(
        args.label, paths, thresholds_path=args.thresholds, verbose=args.verbose
    )
    if problems:
        print(f"\n{len(problems)} benchmark regression(s) [{args.label}]:")
        for p in problems:
            print(f"- {p}")
        return 1
    print(f"bench gate ok: label={args.label}, {len(paths)} section(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
