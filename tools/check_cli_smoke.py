#!/usr/bin/env python3
"""End-to-end CLI smoke: exact vs minhash on the committed tiny FASTA.

Runs the ``genome-at-scale`` CLI twice over ``tests/data/smoke_fasta``
— once with ``--estimator exact`` and once with ``--estimator minhash``
— and asserts that

1. both invocations exit 0 and write a similarity matrix, and
2. the two matrices agree within the analytic 95% bound the sketch run
   prints in its cost report.

This is the cheapest whole-pipeline check there is: FASTA parsing,
k-mer extraction, the distributed engine, the sketch subsystem, and the
result writers all have to work for it to pass.

Run:  python tools/check_cli_smoke.py [--workdir DIR] [--sketch-size S]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

FASTA_DIR = REPO_ROOT / "tests" / "data" / "smoke_fasta"

#: The bound line ``result.summary()`` prints for sketch runs.
BOUND_RE = re.compile(r"estimated J \+/- ([0-9.]+) at 95%")


def run_cli(out_dir: Path, extra_args: list[str]) -> None:
    """Run the CLI as a subprocess; raise on a nonzero exit."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.genomics.cli",
        str(FASTA_DIR),
        "-o",
        str(out_dir),
        "--tree",
        "none",
        *extra_args,
    ]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"CLI exited {proc.returncode} for args {extra_args}")


def check(workdir: Path, sketch_size: int, verbose: bool = False) -> str:
    """Run both CLI modes and compare; returns a summary line."""
    exact_dir = workdir / "exact"
    sketch_dir = workdir / "minhash"
    run_cli(exact_dir, ["--estimator", "exact"])
    run_cli(
        sketch_dir,
        ["--estimator", "minhash", "--sketch-size", str(sketch_size)],
    )
    exact = np.load(exact_dir / "similarity.npy")
    approx = np.load(sketch_dir / "similarity.npy")
    if exact.shape != approx.shape:
        raise SystemExit(
            f"shape mismatch: exact {exact.shape} vs sketch {approx.shape}"
        )
    report = (sketch_dir / "cost_report.txt").read_text()
    match = BOUND_RE.search(report)
    if match is None:
        raise SystemExit("sketch cost report prints no 'estimated J +/- ...' bound")
    bound = float(match.group(1))
    diff = float(np.abs(exact - approx).max())
    if verbose:
        print(f"exact similarity:\n{np.round(exact, 4)}")
        print(f"minhash similarity:\n{np.round(approx, 4)}")
    if diff > bound:
        raise SystemExit(
            f"estimate disagrees with exact beyond the printed bound: "
            f"max |diff| = {diff:.4f} > {bound:.4f}"
        )
    return (
        f"cli smoke ok: {exact.shape[0]} samples, max |exact - minhash| "
        f"= {diff:.4f} <= printed bound {bound:.4f}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="where to write the two output trees (default: a temp dir)",
    )
    parser.add_argument(
        "--sketch-size",
        type=int,
        default=256,
        help="bottom-s size of the minhash run (default 256)",
    )
    parser.add_argument("--verbose", action="store_true", help="print both matrices")
    args = parser.parse_args(argv)
    if not FASTA_DIR.is_dir():
        raise SystemExit(f"committed FASTA directory missing: {FASTA_DIR}")
    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        print(check(args.workdir, args.sketch_size, args.verbose))
    else:
        with tempfile.TemporaryDirectory(prefix="cli_smoke_") as tmp:
            print(check(Path(tmp), args.sketch_size, args.verbose))
    return 0


if __name__ == "__main__":
    sys.exit(main())
