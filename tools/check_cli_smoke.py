#!/usr/bin/env python3
"""End-to-end CLI smoke over the committed tiny FASTA set.

Three sections, all driving the ``genome-at-scale`` CLI as subprocesses
over ``tests/data/smoke_fasta``:

* ``estimator`` — the batch engine: one ``--estimator exact`` run and
  one ``--estimator minhash`` run must exit 0, write similarity
  matrices of equal shape, and agree within the analytic 95% bound the
  sketch run prints in its cost report.
* ``index`` — the serving layer: ``index build`` over three samples,
  ``index add`` of the fourth, then ``index query --threshold`` of one
  sample against the four-genome index; the query's matches must agree
  exactly with a fresh batch-engine exact run over the same four
  samples (same qualifying set, same similarities).  A second query
  pass feeds every sample through ``index query --batch-file`` and
  requires each batched answer to equal the per-query answer for the
  same sample, name for name and similarity for similarity.
* ``shard`` — the migration path: ``index build`` over every sample,
  per-sample baseline queries, then ``index shard --shards 2``
  upgrades the flat index into size bands in place; every re-run
  query must return the identical answer through the fan-out engine.
* ``similarity`` — the measure knob: ``index build`` + per-sample
  ``index query --similarity containment`` runs whose ``--json``
  payloads must report the containment measure and its one-sided
  bound, and whose matches must agree exactly with a fresh in-process
  containment reference computed straight from the k-mer sets.

These are the cheapest whole-pipeline checks there are: FASTA parsing,
k-mer extraction, the distributed engine, the sketch subsystem, the
persistent store, the incremental border-block update, the query
cascade, and the result writers all have to work for them to pass.

Run:  python tools/check_cli_smoke.py [--section all|estimator|index]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

FASTA_DIR = REPO_ROOT / "tests" / "data" / "smoke_fasta"

#: The bound line ``result.summary()`` prints for sketch runs.
BOUND_RE = re.compile(r"estimated J \+/- ([0-9.]+) at 95%")

SECTIONS = ("estimator", "index", "shard", "similarity")


def run_cli(args: list[str]) -> None:
    """Run the CLI as a subprocess; raise on a nonzero exit."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, "-m", "repro.genomics.cli", *args]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"CLI exited {proc.returncode} for args {args}")


def check_estimator(
    workdir: Path, sketch_size: int, verbose: bool = False
) -> str:
    """Run both batch CLI modes and compare; returns a summary line."""
    exact_dir = workdir / "exact"
    sketch_dir = workdir / "minhash"
    run_cli(
        [str(FASTA_DIR), "-o", str(exact_dir), "--tree", "none",
         "--estimator", "exact"]
    )
    run_cli(
        [str(FASTA_DIR), "-o", str(sketch_dir), "--tree", "none",
         "--estimator", "minhash", "--sketch-size", str(sketch_size)]
    )
    exact = np.load(exact_dir / "similarity.npy")
    approx = np.load(sketch_dir / "similarity.npy")
    if exact.shape != approx.shape:
        raise SystemExit(
            f"shape mismatch: exact {exact.shape} vs sketch {approx.shape}"
        )
    report = (sketch_dir / "cost_report.txt").read_text()
    match = BOUND_RE.search(report)
    if match is None:
        raise SystemExit(
            "sketch cost report prints no 'estimated J +/- ...' bound"
        )
    bound = float(match.group(1))
    diff = float(np.abs(exact - approx).max())
    if verbose:
        print(f"exact similarity:\n{np.round(exact, 4)}")
        print(f"minhash similarity:\n{np.round(approx, 4)}")
    if diff > bound:
        raise SystemExit(
            f"estimate disagrees with exact beyond the printed bound: "
            f"max |diff| = {diff:.4f} > {bound:.4f}"
        )
    return (
        f"cli smoke ok [estimator]: {exact.shape[0]} samples, "
        f"max |exact - minhash| = {diff:.4f} <= printed bound {bound:.4f}"
    )


def check_index(
    workdir: Path, threshold: float = 0.1, verbose: bool = False
) -> str:
    """build -> add -> query; matches must equal a fresh exact run."""
    fastas = sorted(FASTA_DIR.glob("*.fasta"))
    if len(fastas) < 2:
        raise SystemExit(f"need at least two smoke FASTA files in {FASTA_DIR}")
    index_dir = workdir / "index"
    query_json = workdir / "query.json"
    if index_dir.exists():
        # Keep the check rerunnable with a persistent --workdir: the
        # store refuses to build over an existing index.
        shutil.rmtree(index_dir)

    # Build from all but the last sample, then add the last incrementally.
    run_cli(
        ["index", "build", *map(str, fastas[:-1]), "--index", str(index_dir)]
    )
    run_cli(
        ["index", "add", str(fastas[-1]), "--index", str(index_dir)]
    )
    query_fasta = fastas[0]
    run_cli(
        [
            "index", "query", str(query_fasta), "--index", str(index_dir),
            "--threshold", str(threshold), "--json", str(query_json),
        ]
    )
    result = json.loads(query_json.read_text())

    # Fresh exact batch run over the same four samples, same order.
    exact_dir = workdir / "exact_reference"
    run_cli(
        [*map(str, fastas), "-o", str(exact_dir), "--tree", "none",
         "--estimator", "exact"]
    )
    similarity = np.load(exact_dir / "similarity.npy")
    names = [p.stem for p in fastas]
    qi = names.index(query_fasta.stem)
    expected = sorted(
        (
            (names[j], float(similarity[qi, j]))
            for j in range(len(names))
            if similarity[qi, j] >= threshold
        ),
        key=lambda pair: (-pair[1], names.index(pair[0])),
    )
    got = [(m["name"], m["similarity"]) for m in result["matches"]]
    if verbose:
        print(f"expected: {expected}")
        print(f"query returned: {got}")
    if [n for n, _ in got] != [n for n, _ in expected]:
        raise SystemExit(
            f"index query match set differs from the fresh exact run: "
            f"{[n for n, _ in got]} vs {[n for n, _ in expected]}"
        )
    for (gn, gs), (en, es) in zip(got, expected):
        if abs(gs - es) > 1e-9:
            raise SystemExit(
                f"index query similarity for {gn} differs from the fresh "
                f"exact run: {gs!r} vs {es!r}"
            )

    # Batched front end: every sample through one --batch-file run must
    # give the same answer the per-query path gives for that sample.
    per_query: dict[str, list[tuple[str, float]]] = {}
    for fasta in fastas:
        single_json = workdir / f"single_{fasta.stem}.json"
        run_cli(
            [
                "index", "query", str(fasta), "--index", str(index_dir),
                "--threshold", str(threshold), "--json", str(single_json),
            ]
        )
        single = json.loads(single_json.read_text())
        per_query[fasta.stem] = [
            (m["name"], m["similarity"]) for m in single["matches"]
        ]
    batch_list = workdir / "batch_queries.txt"
    batch_list.write_text("".join(f"{p}\n" for p in fastas))
    batch_json = workdir / "batch.json"
    run_cli(
        [
            "index", "query", "--batch-file", str(batch_list),
            "--index", str(index_dir),
            "--threshold", str(threshold), "--json", str(batch_json),
        ]
    )
    batch = json.loads(batch_json.read_text())
    if not batch.get("batched") or batch.get("n_queries") != len(fastas):
        raise SystemExit(
            f"--batch-file payload malformed: expected a batched run over "
            f"{len(fastas)} queries, got {batch!r}"
        )
    for entry in batch["queries"]:
        stem = Path(entry["query"]).stem
        got_b = [(m["name"], m["similarity"]) for m in entry["matches"]]
        want = per_query[stem]
        if [n for n, _ in got_b] != [n for n, _ in want]:
            raise SystemExit(
                f"batched query for {stem} returned a different match set "
                f"than the per-query path: "
                f"{[n for n, _ in got_b]} vs {[n for n, _ in want]}"
            )
        for (bn, bs), (_, ss) in zip(got_b, want):
            if abs(bs - ss) > 1e-9:
                raise SystemExit(
                    f"batched similarity for {stem}/{bn} differs from the "
                    f"per-query path: {bs!r} vs {ss!r}"
                )
    return (
        f"cli smoke ok [index]: build({len(fastas) - 1}) -> add(1) -> "
        f"query t={threshold:g} returned {len(got)} match(es) identical "
        f"to the fresh exact run "
        f"({result['n_candidates']} candidate(s), "
        f"{result['n_verified']} verified); --batch-file over "
        f"{len(fastas)} queries matched the per-query path"
    )


def check_shard(
    workdir: Path, threshold: float = 0.1, verbose: bool = False
) -> str:
    """Shard a live flat index in place; answers must not move."""
    fastas = sorted(FASTA_DIR.glob("*.fasta"))
    if len(fastas) < 2:
        raise SystemExit(f"need at least two smoke FASTA files in {FASTA_DIR}")
    index_dir = workdir / "shard_index"
    if index_dir.exists():
        shutil.rmtree(index_dir)
    run_cli(["index", "build", *map(str, fastas), "--index", str(index_dir)])

    def query_all(tag: str) -> dict[str, list[tuple[str, float]]]:
        answers = {}
        for fasta in fastas:
            out_json = workdir / f"shard_{tag}_{fasta.stem}.json"
            run_cli(
                [
                    "index", "query", str(fasta), "--index", str(index_dir),
                    "--threshold", str(threshold), "--json", str(out_json),
                ]
            )
            payload = json.loads(out_json.read_text())
            answers[fasta.stem] = [
                (m["name"], m["similarity"]) for m in payload["matches"]
            ]
        return answers

    before = query_all("flat")
    run_cli(["index", "shard", "--index", str(index_dir), "--shards", "2"])
    manifest = json.loads((index_dir / "manifest.json").read_text())
    if manifest.get("layout") != "sharded":
        raise SystemExit(
            f"index shard left no sharded manifest in {index_dir}: "
            f"layout = {manifest.get('layout')!r}"
        )
    after = query_all("sharded")
    if verbose:
        print(f"flat answers: {before}")
        print(f"sharded answers: {after}")
    for stem in before:
        if after[stem] != before[stem]:
            raise SystemExit(
                f"query for {stem} moved after index shard: "
                f"{before[stem]} -> {after[stem]}"
            )
    return (
        f"cli smoke ok [shard]: build({len(fastas)}) -> shard(2) kept "
        f"every query t={threshold:g} answer identical across "
        f"{len(fastas)} samples"
    )


def check_similarity(
    workdir: Path, threshold: float = 0.1, verbose: bool = False
) -> str:
    """``--similarity containment`` vs a fresh exact in-process reference."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.genomics.counting import clean_sample
    from repro.genomics.fasta import read_fasta
    from repro.semantics import get_measure

    fastas = sorted(FASTA_DIR.glob("*.fasta"))
    if len(fastas) < 2:
        raise SystemExit(f"need at least two smoke FASTA files in {FASTA_DIR}")
    index_dir = workdir / "containment_index"
    if index_dir.exists():
        shutil.rmtree(index_dir)
    run_cli(
        [
            "index", "build", *map(str, fastas),
            "--index", str(index_dir), "--similarity", "containment",
        ]
    )

    # The reference uses the CLI's own k-mer front end (default -k and
    # canonicalization) but scores with the measure object directly.
    measure = get_measure("containment")
    codes = {
        p.stem: clean_sample(read_fasta(p), 31)[0] for p in fastas
    }
    n_checked = 0
    for query_fasta in fastas:
        out_json = workdir / f"containment_{query_fasta.stem}.json"
        run_cli(
            [
                "index", "query", str(query_fasta), "--index", str(index_dir),
                "--similarity", "containment",
                "--threshold", str(threshold), "--json", str(out_json),
            ]
        )
        payload = json.loads(out_json.read_text())
        if payload.get("similarity") != "containment":
            raise SystemExit(
                f"--json reports similarity={payload.get('similarity')!r}, "
                f"expected 'containment'"
            )
        if payload.get("bound_type") != "one_sided_window":
            raise SystemExit(
                f"--json reports bound_type={payload.get('bound_type')!r}, "
                f"expected 'one_sided_window'"
            )
        q = codes[query_fasta.stem]
        expected = sorted(
            (
                (name, measure.exact_pair(q, c))
                for name, c in codes.items()
                if measure.exact_pair(q, c) >= threshold
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        got = [(m["name"], m["similarity"]) for m in payload["matches"]]
        if verbose:
            print(f"{query_fasta.stem}: expected {expected}, got {got}")
        if [n for n, _ in got] != [n for n, _ in expected]:
            raise SystemExit(
                f"containment query for {query_fasta.stem} differs from the "
                f"fresh exact reference: {[n for n, _ in got]} vs "
                f"{[n for n, _ in expected]}"
            )
        for (gn, gs), (_, es) in zip(got, expected):
            if abs(gs - es) > 1e-9:
                raise SystemExit(
                    f"containment similarity for {query_fasta.stem}/{gn} "
                    f"differs from the fresh exact reference: {gs!r} vs {es!r}"
                )
        n_checked += len(got)
    return (
        f"cli smoke ok [similarity]: containment queries over "
        f"{len(fastas)} samples returned {n_checked} match(es) identical "
        f"to the fresh exact reference (one-sided bound reported)"
    )


def check(
    workdir: Path,
    sketch_size: int,
    verbose: bool = False,
    sections: tuple[str, ...] = SECTIONS,
) -> list[str]:
    out = []
    if "estimator" in sections:
        out.append(check_estimator(workdir, sketch_size, verbose))
    if "index" in sections:
        out.append(check_index(workdir, verbose=verbose))
    if "shard" in sections:
        out.append(check_shard(workdir, verbose=verbose))
    if "similarity" in sections:
        out.append(check_similarity(workdir, verbose=verbose))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="where to write the output trees (default: a temp dir)",
    )
    parser.add_argument(
        "--sketch-size",
        type=int,
        default=256,
        help="bottom-s size of the minhash run (default 256)",
    )
    parser.add_argument(
        "--section",
        choices=["all", *SECTIONS],
        default="all",
        help="which smoke section(s) to run (default all)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print the compared results"
    )
    args = parser.parse_args(argv)
    if not FASTA_DIR.is_dir():
        raise SystemExit(f"committed FASTA directory missing: {FASTA_DIR}")
    sections = SECTIONS if args.section == "all" else (args.section,)
    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        lines = check(args.workdir, args.sketch_size, args.verbose, sections)
    else:
        with tempfile.TemporaryDirectory(prefix="cli_smoke_") as tmp:
            lines = check(Path(tmp), args.sketch_size, args.verbose, sections)
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
